// p2pgen — query-lifecycle tracing (observability layer, DESIGN.md §12).
//
// Causal hop-by-hop traces of individual queries through the overlay:
// for a deterministically sampled subset of queries, every place a QUERY
// (or its QUERYHIT answer) is emitted, received, forwarded, or dropped
// records one QueryHopEvent, so a sampled query's whole journey — how
// far it propagated, where the fault layer or a degradation valve killed
// it, how long its hit took to come back — can be reconstructed after
// the run.  The aggregate counters of PR 3 say *how many* queries were
// dropped; qtrace says *which* and *where*.
//
// Design constraints, in the repo's usual order:
//
//   1. *Deterministic sampling, no RNG.*  A query is sampled iff an
//      FNV-1a mix of its GUID hash falls below sample_rate * 2^64.  The
//      decision is a pure function of (query, rate): identical across
//      thread counts, shard merges, checkpoint resume and the streaming
//      replay — the same queries are traced everywhere.
//   2. *Strictly observational.*  Recording never feeds back into the
//      simulation: a run with tracing at any rate is byte-identical
//      (trace::binary_digest) to a run without the subsystem.
//   3. *Zero-cost when disabled.*  sample_rate = 0 constructs nothing;
//      every instrumentation site is a single null-pointer check.
//   4. *Deterministic merge.*  Per-shard buffers are merged in the same
//      stable (time, shard index, position) order trace::merge_traces
//      uses, so the merged event stream — and every aggregate derived
//      from it — is bit-identical at any thread count.
//
// Like the rest of obs/, this header depends on nothing but the C++
// standard library: callers pass the query key as a plain integer (the
// gnutella::GuidHash of the message GUID) so the obs layer stays at the
// bottom of the link graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace p2pgen::obs {

/// Tracing knobs carried by TraceSimulationConfig.  Deliberately NOT part
/// of simulation_config_digest: tracing is observational, so two configs
/// differing only here still produce the same trace (and may share bench
/// caches and durable-run identities).
struct QtraceConfig {
  /// Fraction of queries traced, [0, 1].  0 disables the subsystem
  /// entirely; 1 traces every query.  The sampled set at rate r is a
  /// superset of the sampled set at every r' < r.
  double sample_rate = 0.0;

  /// Events before this simulation time are dropped (the warm-up gate —
  /// set by TraceSimulation to match the trace's own gate, not by users).
  double gate_time = 0.0;
};

/// One step of a sampled query's journey.  Values are wire-stable: they
/// are written to the qtrace sidecar files, so renumbering is a format
/// break (bump kQtraceFormatVersion).
enum class QueryHop : std::uint8_t {
  kQueryEmitted = 0,    ///< a peer put the QUERY on the wire
  kQueryReceived = 1,   ///< the measurement node decoded + recorded it
  kForwarded = 2,       ///< node forwarded it to one neighbor (one per send)
  kDuplicateDropped = 3,///< GUID already in the routing table: not forwarded
  kTtlExpired = 4,      ///< arrived with TTL 0: not forwardable
  kQrpSuppressed = 5,   ///< leaf skipped on a QRP table miss
  kShed = 6,            ///< degradation valve dropped it before any work
  kDropLoss = 7,        ///< fault layer lost the descriptor on the wire
  kCorrupted = 8,       ///< fault layer damaged the wire bytes in flight
  kDropDeadLink = 9,    ///< swallowed by a half-open link / crashed sender
  kHitEmitted = 10,     ///< a peer answered with a QUERYHIT
  kHitReceived = 11,    ///< the node decoded + recorded the QUERYHIT
  kHitReturned = 12,    ///< node reverse-routed the hit toward the querier
};
inline constexpr std::size_t kQueryHopCount = 13;

/// Stable lower_snake_case name of a hop kind (metric suffixes, JSON).
const char* query_hop_name(QueryHop hop) noexcept;

/// One recorded hop.  40 bytes; buffers hold millions at full sampling.
struct QueryHopEvent {
  double time = 0.0;         ///< simulation seconds
  std::uint64_t query = 0;   ///< gnutella::GuidHash of the query's GUID
  std::uint32_t shard = 0;   ///< shard index; assigned by merge_qtrace
  QueryHop hop = QueryHop::kQueryEmitted;
  std::uint8_t ttl = 0;
  std::uint8_t hops = 0;
  /// kHitReturned: end-to-end latency in seconds since the query's first
  /// emission, or -1 when the emission was never observed.  -1 otherwise.
  double value = -1.0;
};

bool operator==(const QueryHopEvent& a, const QueryHopEvent& b) noexcept;

/// The deterministic sampling decision by itself: true iff `query` is
/// traced at `sample_rate`.  Pure; identical on every platform.
bool qtrace_sampled(std::uint64_t query, double sample_rate) noexcept;

/// Per-shard hop recorder.  Single-threaded like the shard simulation it
/// instruments; TraceSimulation owns one per run and hands the raw
/// pointer to the transport and the measurement node.  Only constructed
/// when sample_rate > 0, so instrumentation sites gate on the pointer.
class QueryTracer {
 public:
  explicit QueryTracer(const QtraceConfig& config);

  bool enabled() const noexcept { return threshold_ != 0 || always_; }
  bool sampled(std::uint64_t query) const noexcept;

  /// Appends one hop (dropped while time < gate_time).
  void record(double time, std::uint64_t query, QueryHop hop,
              std::uint8_t ttl, std::uint8_t hops, double value = -1.0);

  /// kQueryEmitted plus the latency bookkeeping: the FIRST emission of a
  /// query starts its end-to-end clock (kept across the warm-up gate so
  /// a post-gate hit of a pre-gate query still gets a latency).
  void record_query_emitted(double time, std::uint64_t query,
                            std::uint8_t ttl, std::uint8_t hops);

  /// Seconds since the query's first observed emission; -1 if unseen.
  double latency_since_emit(std::uint64_t query, double now) const noexcept;

  const std::vector<QueryHopEvent>& events() const noexcept { return events_; }
  std::vector<QueryHopEvent> take() noexcept { return std::move(events_); }

 private:
  std::uint64_t threshold_ = 0;  ///< sampled iff mix(query) < threshold_
  bool always_ = false;          ///< sample_rate >= 1
  double gate_ = 0.0;
  std::vector<QueryHopEvent> events_;
  std::unordered_map<std::uint64_t, double> first_emit_;
};

/// Merges per-shard buffers (each time-nondecreasing) into one stream in
/// stable (time, shard index, within-shard position) order — the exact
/// order trace::merge_traces pins — and stamps each event's `shard`.
std::vector<QueryHopEvent> merge_qtrace(
    std::vector<std::vector<QueryHopEvent>> shards);

/// FNV-1a over the serialized event stream: the bit-identity handle the
/// determinism tests and the qtrace-overhead CI job compare.
std::uint64_t qtrace_digest(const std::vector<QueryHopEvent>& events) noexcept;

/// Registers and fills the derived aggregates in the global registry:
/// per-hop counters ("qtrace.received.query", "qtrace.drop.loss", ...),
/// "qtrace.sampled_queries", and the hop-count / fan-out / hit-latency
/// histograms.  Call exactly once per analysis with the MERGED stream —
/// aggregation over the merged order is what makes the numbers identical
/// at any thread count, and it is what lets the streaming path reproduce
/// them exactly from the sidecar files.
void publish_qtrace_metrics(const std::vector<QueryHopEvent>& merged);

/// "<shard_dir>/qtrace.bin" — the per-shard sidecar the durable runner
/// writes next to the trace spool and the streaming pass reads back.
std::string qtrace_sidecar_path(const std::string& shard_dir);

/// Writes the sidecar atomically (tmp + rename).  An empty event list
/// still writes a valid zero-count file: its presence is how readers know
/// tracing was enabled for the run.
void save_qtrace(const std::string& path,
                 const std::vector<QueryHopEvent>& events);

/// Loads a sidecar into `out` (replacing its contents).  Returns false —
/// leaving `out` empty — when the file does not exist (a checkpoint from
/// before tracing, or a run with tracing off).  Throws std::runtime_error
/// on a malformed file.
bool load_qtrace(const std::string& path, std::vector<QueryHopEvent>& out);

/// One JSON object {"qtrace":[...]} with one record per hop event — the
/// measurement_pipeline --query-trace dump, stable field order.
void write_qtrace_json(std::ostream& out,
                       const std::vector<QueryHopEvent>& events);

/// chrome://tracing fragments for the merged stream: one "X" slice per
/// hop (pid 2, tid = shard, ts = simulation microseconds) plus "s"/"t"/
/// "f" flow events chaining each sampled query's hops into one arrow
/// path across shards.  Emits nothing for an empty stream; meant to be
/// passed to TraceLog::write_chrome_json as the extra-events writer.
void write_qtrace_flow_events(std::ostream& out,
                              const std::vector<QueryHopEvent>& events,
                              bool any_prior);

}  // namespace p2pgen::obs
