#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace p2pgen::obs {

struct Histogram::Meta {
  std::string name;
  std::vector<double> bounds;
  std::uint32_t first_cell = 0;  ///< bounds.size()+1 buckets, then sum
};

namespace {

/// Process-unique registry ids let the single-entry TLS cache tell a
/// live registry from a destroyed one that happened to reuse the same
/// address: ids are never reused, so a stale cache entry can only miss.
std::atomic<std::uint64_t> g_next_registry_id{1};

struct TlsCache {
  std::uint64_t registry_id = 0;
  std::atomic<std::uint64_t>* cells = nullptr;
};
thread_local TlsCache t_cache;

void write_json_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c; break;
    }
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map '.' (and anything else) to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

// ---- MetricsSnapshot ----------------------------------------------------

std::uint64_t MetricsSnapshot::counter_value(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, counters[i].name);
    out << "\": " << counters[i].value;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, gauges[i].name);
    out << "\": " << gauges[i].value;
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, h.name);
    out << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.bounds[b];
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    out << "], \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
  }
  out << "\n  }\n}\n";
}

void MetricsSnapshot::write_prometheus(std::ostream& out) const {
  for (const auto& c : counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      std::string le = "+Inf";
      if (b < h.bounds.size()) {
        std::ostringstream bound;
        bound << h.bounds[b];
        le = bound.str();
      }
      // Label VALUES (unlike metric names) are free-form and must be
      // escaped per the exposition format.
      out << name << "_bucket{le=\"" << prometheus_escape_label(le) << "\"} "
          << cumulative << "\n";
    }
    out << name << "_sum " << h.sum << "\n"
        << name << "_count " << h.count << "\n";
  }
}

// ---- handles ------------------------------------------------------------

void Counter::add(std::uint64_t n) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->cells_for_this_thread()[cell_].fetch_add(
      n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->gauge_values_[index_]->store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t v) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  registry_->gauge_values_[index_]->fetch_add(v, std::memory_order_relaxed);
}

void Gauge::record_max(std::int64_t v) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  auto& cell = *registry_->gauge_values_[index_];
  std::int64_t current = cell.load(std::memory_order_relaxed);
  while (v > current &&
         !cell.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double value) const noexcept {
  if (registry_ == nullptr || meta_ == nullptr || !registry_->enabled()) {
    return;
  }
  // Meta fields are immutable after registration and each meta sits at a
  // stable heap address, so this read needs no lock.
  const auto it =
      std::lower_bound(meta_->bounds.begin(), meta_->bounds.end(), value);
  const auto bucket = static_cast<std::uint32_t>(it - meta_->bounds.begin());
  auto* cells = registry_->cells_for_this_thread();
  cells[meta_->first_cell + bucket].fetch_add(1, std::memory_order_relaxed);
  const double clamped = std::max(0.0, value);
  cells[meta_->first_cell + meta_->bounds.size() + 1].fetch_add(
      static_cast<std::uint64_t>(std::llround(clamped)),
      std::memory_order_relaxed);
}

// ---- Registry -----------------------------------------------------------

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* const instance = new Registry;  // intentionally leaked
  return *instance;
}

std::uint32_t Registry::allocate_cells(std::uint32_t n) {
  if (next_cell_ + n > kMaxCells) {
    throw std::length_error("obs::Registry: metric cell space exhausted");
  }
  const std::uint32_t first = next_cell_;
  next_cell_ += n;
  return first;
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, cell] : counters_) {
    if (existing == name) return Counter(this, cell);
  }
  const std::uint32_t cell = allocate_cells(1);
  counters_.emplace_back(std::string(name), cell);
  return Counter(this, cell);
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, index] : gauges_) {
    if (existing == name) return Gauge(this, index);
  }
  const auto index = static_cast<std::uint32_t>(gauge_values_.size());
  gauges_.emplace_back(std::string(name), index);
  gauge_values_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  return Gauge(this, index);
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& meta : histograms_) {
    if (meta->name == name) return Histogram(this, meta.get());
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("obs::Registry: histogram bounds not sorted");
  }
  auto meta = std::make_unique<Histogram::Meta>();
  meta->name = std::string(name);
  meta->first_cell =
      allocate_cells(static_cast<std::uint32_t>(bounds.size()) + 2);
  meta->bounds = std::move(bounds);
  histograms_.push_back(std::move(meta));
  return Histogram(this, histograms_.back().get());
}

std::atomic<std::uint64_t>* Registry::cells_for_this_thread() const {
  if (t_cache.registry_id == id_) return t_cache.cells;
  return acquire_shard()->cells.get();
}

Registry::Shard* Registry::acquire_shard() const {
  const std::thread::id self = std::this_thread::get_id();
  {
    // A thread alternating between registries thrashes the single-entry
    // TLS cache; its shard in each registry must be found again, not
    // re-allocated.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      if (shard->owner == self) {
        t_cache.registry_id = id_;
        t_cache.cells = shard->cells.get();
        return shard.get();
      }
    }
  }
  auto shard = std::make_unique<Shard>();
  shard->owner = self;
  shard->cells = std::make_unique<std::atomic<std::uint64_t>[]>(kMaxCells);
  for (std::size_t i = 0; i < kMaxCells; ++i) {
    shard->cells[i].store(0, std::memory_order_relaxed);
  }
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(shard));
  }
  t_cache.registry_id = id_;
  t_cache.cells = raw->cells.get();
  return raw;
}

std::uint64_t Registry::sum_cell(std::uint32_t cell) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cells[cell].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.push_back({name, sum_cell(cell)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, index] : gauges_) {
    snap.gauges.push_back(
        {name, gauge_values_[index]->load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& meta : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = meta->name;
    h.bounds = meta->bounds;
    h.buckets.resize(meta->bounds.size() + 1);
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      h.buckets[b] = sum_cell(meta->first_cell + static_cast<std::uint32_t>(b));
      h.count += h.buckets[b];
    }
    h.sum = sum_cell(meta->first_cell +
                     static_cast<std::uint32_t>(meta->bounds.size()) + 1);
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricsSnapshot Registry::delta(const MetricsSnapshot& since) const {
  MetricsSnapshot now = snapshot();
  // Both snapshots are sorted by name, but `since` may lack metrics that
  // were registered after it was taken, so subtract by lookup rather
  // than by position.  Clamp at zero: a reset() between the snapshots
  // must not wrap counters around.
  for (auto& c : now.counters) {
    const std::uint64_t base = since.counter_value(c.name);
    c.value = c.value >= base ? c.value - base : 0;
  }
  for (auto& h : now.histograms) {
    const MetricsSnapshot::HistogramValue* base = nullptr;
    for (const auto& candidate : since.histograms) {
      if (candidate.name == h.name) {
        base = &candidate;
        break;
      }
    }
    if (base == nullptr || base->bounds != h.bounds ||
        base->buckets.size() != h.buckets.size()) {
      continue;  // new or re-bucketed histogram: the delta is all of it
    }
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      h.buckets[b] =
          h.buckets[b] >= base->buckets[b] ? h.buckets[b] - base->buckets[b] : 0;
    }
    h.count = h.count >= base->count ? h.count - base->count : 0;
    h.sum = h.sum >= base->sum ? h.sum - base->sum : 0;
  }
  // Gauges are point-in-time values; differencing them is meaningless,
  // so they pass through as-is.
  return now;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      shard->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& gauge : gauge_values_) {
    gauge->store(0, std::memory_order_relaxed);
  }
}

}  // namespace p2pgen::obs
