// p2pgen — CRC32 (IEEE 802.3, the zlib polynomial), local to obs/.
//
// The qtrace/timeline sidecars carry a CRC32 trailer (format v2) so a
// resume can tell a damaged sidecar from a valid one and rebuild it
// instead of aborting.  The observability layer deliberately does not
// link the trace library, so this is a small header-only copy of the
// same polynomial trace::crc32 uses — the two must stay interchangeable
// byte-for-byte on identical input.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace p2pgen::obs {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Streaming form: seed with crc32_init(), fold chunks in order with
/// crc32_update(), finish with crc32_final().
inline constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t n) noexcept {
  const auto& table = detail::crc32_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

inline constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot convenience over a whole buffer.
inline std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace p2pgen::obs
