#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "obs/crc32.hpp"
#include "obs/metrics.hpp"

namespace p2pgen::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t hash, const void* data,
                          std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Sidecar wire format (all little-endian):
///   "p2pt" | u32 version | u32 series_count | u32 pad(0) |
///   u64 tick_seconds_bits | u64 count | count * records
/// Record: u64 time_bits | u32 shard | u32 pad(0) |
///         kTimelineSeriesCount * u64 values
constexpr char kTimelineMagic[4] = {'p', '2', 'p', 't'};
// v2 appends a CRC32 trailer over the record bytes so a resume can tell
// a damaged sidecar from a valid one (and rebuild it, DESIGN.md §14).
constexpr std::uint32_t kTimelineFormatVersion = 2;
constexpr std::size_t kTimelineHeaderBytes = 32;
constexpr std::size_t kTimelineRecordBytes = 16 + 8 * kTimelineSeriesCount;

void put_u32(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v & 0xffU);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xffU);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xffU);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xffU);
}

void put_u64(unsigned char* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffU);
  }
}

std::uint32_t get_u32(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

void encode_record(unsigned char* out, const TimelinePoint& p) noexcept {
  put_u64(out + 0, double_bits(p.time));
  put_u32(out + 8, p.shard);
  put_u32(out + 12, 0);
  for (std::size_t s = 0; s < kTimelineSeriesCount; ++s) {
    put_u64(out + 16 + 8 * s, p.values[s]);
  }
}

TimelinePoint decode_record(const unsigned char* in) noexcept {
  TimelinePoint p;
  p.time = bits_double(get_u64(in + 0));
  p.shard = get_u32(in + 8);
  for (std::size_t s = 0; s < kTimelineSeriesCount; ++s) {
    p.values[s] = get_u64(in + 16 + 8 * s);
  }
  return p;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::FILE* file) : file_(file) {}
  ~ScopedFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  ScopedFile(const ScopedFile&) = delete;
  ScopedFile& operator=(const ScopedFile&) = delete;
  std::FILE* get() const noexcept { return file_; }
  int close() {
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc;
  }

 private:
  std::FILE* file_;
};

}  // namespace

const char* timeline_series_name(TimelineSeries series) noexcept {
  switch (series) {
    case TimelineSeries::kQueries: return "queries";
    case TimelineSeries::kQueryHits: return "query_hits";
    case TimelineSeries::kSessionsStarted: return "sessions_started";
    case TimelineSeries::kSessionsEnded: return "sessions_ended";
    case TimelineSeries::kActiveSessions: return "active_sessions";
    case TimelineSeries::kShedQueries: return "shed_queries";
    case TimelineSeries::kShedConnections: return "shed_connections";
    case TimelineSeries::kDropLoss: return "drop_loss";
    case TimelineSeries::kDropCorrupted: return "drop_corrupted";
    case TimelineSeries::kDropDeadLink: return "drop_dead_link";
    case TimelineSeries::kDropDuplicate: return "drop_duplicate";
    case TimelineSeries::kQueriesNorthAmerica: return "queries_north_america";
    case TimelineSeries::kQueriesEurope: return "queries_europe";
    case TimelineSeries::kQueriesAsia: return "queries_asia";
    case TimelineSeries::kQueriesOther: return "queries_other";
  }
  return "unknown";
}

bool operator==(const TimelinePoint& a, const TimelinePoint& b) noexcept {
  return double_bits(a.time) == double_bits(b.time) && a.shard == b.shard &&
         a.values == b.values;
}

TimelineRecorder::TimelineRecorder(const TimelineConfig& config)
    : tick_(config.tick_seconds), gate_(config.gate_time) {}

void TimelineRecorder::close_tick() {
  TimelinePoint point;
  // gate + k * tick with integer k: every shard computes the identical
  // expression, and no floating-point error accumulates over a 40-day
  // run the way repeated `+= tick_` would.
  point.time = gate_ + static_cast<double>(next_tick_) * tick_;
  point.values = counts_;
  for (std::size_t s = 0; s < kTimelineSeriesCount; ++s) {
    const auto series = static_cast<TimelineSeries>(s);
    if (timeline_series_is_gauge(series)) {
      point.values[s] =
          static_cast<std::uint64_t>(std::max<std::int64_t>(levels_[s], 0));
    }
  }
  points_.push_back(point);
  counts_.fill(0);
  ++next_tick_;
}

void TimelineRecorder::advance_to(double time) {
  // Close every tick that ends at or before `time`.  The loop is bounded
  // by the simulation horizon / tick ratio (a few thousand for the
  // default tick even at the 40-day paper scale).
  while (time >= gate_ + static_cast<double>(next_tick_ + 1) * tick_) {
    close_tick();
  }
}

void TimelineRecorder::count(double time, TimelineSeries series,
                             std::uint64_t n) {
  if (tick_ <= 0.0 || time < gate_) return;
  advance_to(time);
  counts_[static_cast<std::size_t>(series)] += n;
}

void TimelineRecorder::level(double time, TimelineSeries series,
                             std::int64_t delta) {
  if (tick_ <= 0.0) return;
  // Pre-gate deltas still move the level (warm-up opens real sessions the
  // first tick must count), but never close a tick.
  if (time >= gate_) advance_to(time);
  levels_[static_cast<std::size_t>(series)] += delta;
}

void TimelineRecorder::finish(double end_time) {
  if (tick_ <= 0.0) return;
  while (gate_ + static_cast<double>(next_tick_) * tick_ < end_time) {
    close_tick();
  }
}

std::vector<TimelinePoint> merge_timeline(
    std::vector<std::vector<TimelinePoint>> shards) {
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<TimelinePoint> merged;
  merged.reserve(total);

  // Same k-way merge discipline as trace::merge_traces / merge_qtrace:
  // repeatedly take the head with the strictly smallest time, scanning
  // shards in ascending index so ties resolve to the lowest shard.
  std::vector<std::size_t> cursor(shards.size(), 0);
  while (merged.size() < total) {
    std::size_t best = shards.size();
    for (std::size_t k = 0; k < shards.size(); ++k) {
      if (cursor[k] >= shards[k].size()) continue;
      if (best == shards.size() ||
          shards[k][cursor[k]].time < shards[best][cursor[best]].time) {
        best = k;
      }
    }
    TimelinePoint point = shards[best][cursor[best]++];
    point.shard = static_cast<std::uint32_t>(best);
    merged.push_back(point);
  }
  return merged;
}

std::uint64_t timeline_digest(
    const std::vector<TimelinePoint>& points) noexcept {
  std::uint64_t hash = kFnvOffset;
  unsigned char record[kTimelineRecordBytes];
  for (const TimelinePoint& point : points) {
    encode_record(record, point);
    hash = fnv1a_bytes(hash, record, sizeof(record));
  }
  return hash;
}

void publish_timeline_metrics(const std::vector<TimelinePoint>& merged) {
  auto& registry = Registry::global();

  auto points_total = registry.counter("timeline.points");
  auto peak_active = registry.gauge("timeline.peak.active_sessions");
  std::array<Counter, kTimelineSeriesCount> totals;
  for (std::size_t s = 0; s < kTimelineSeriesCount; ++s) {
    const auto series = static_cast<TimelineSeries>(s);
    if (timeline_series_is_gauge(series)) continue;
    totals[s] = registry.counter(std::string("timeline.total.") +
                                 timeline_series_name(series));
  }

  points_total.add(merged.size());
  for (const TimelinePoint& point : merged) {
    for (std::size_t s = 0; s < kTimelineSeriesCount; ++s) {
      const auto series = static_cast<TimelineSeries>(s);
      if (timeline_series_is_gauge(series)) continue;
      totals[s].add(point.values[s]);
    }
    peak_active.record_max(static_cast<std::int64_t>(
        point.values[static_cast<std::size_t>(TimelineSeries::kActiveSessions)]));
  }
}

std::string timeline_sidecar_path(const std::string& shard_dir) {
  return shard_dir + "/timeline.bin";
}

void save_timeline(const std::string& path,
                   const std::vector<TimelinePoint>& points,
                   double tick_seconds) {
  const std::string tmp = path + ".tmp";
  {
    ScopedFile file(std::fopen(tmp.c_str(), "wb"));
    if (file.get() == nullptr) {
      throw std::runtime_error("timeline: cannot open " + tmp);
    }
    unsigned char header[kTimelineHeaderBytes];
    std::memcpy(header, kTimelineMagic, 4);
    put_u32(header + 4, kTimelineFormatVersion);
    put_u32(header + 8, static_cast<std::uint32_t>(kTimelineSeriesCount));
    put_u32(header + 12, 0);
    put_u64(header + 16, double_bits(tick_seconds));
    put_u64(header + 24, static_cast<std::uint64_t>(points.size()));
    if (std::fwrite(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
      throw std::runtime_error("timeline: short write to " + tmp);
    }
    unsigned char record[kTimelineRecordBytes];
    std::uint32_t crc = crc32_init();
    for (const TimelinePoint& point : points) {
      encode_record(record, point);
      crc = crc32_update(crc, record, sizeof(record));
      if (std::fwrite(record, 1, sizeof(record), file.get()) !=
          sizeof(record)) {
        throw std::runtime_error("timeline: short write to " + tmp);
      }
    }
    unsigned char trailer[4];
    put_u32(trailer, crc32_final(crc));
    if (std::fwrite(trailer, 1, sizeof(trailer), file.get()) !=
        sizeof(trailer)) {
      throw std::runtime_error("timeline: short write to " + tmp);
    }
    if (std::fflush(file.get()) != 0 || file.close() != 0) {
      throw std::runtime_error("timeline: flush failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("timeline: rename failed for " + path);
  }
}

bool load_timeline(const std::string& path, std::vector<TimelinePoint>& out,
                   double* tick_seconds) {
  out.clear();
  ScopedFile file(std::fopen(path.c_str(), "rb"));
  if (file.get() == nullptr) return false;

  unsigned char header[kTimelineHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    throw std::runtime_error("timeline: truncated header in " + path);
  }
  if (std::memcmp(header, kTimelineMagic, 4) != 0) {
    throw std::runtime_error("timeline: bad magic in " + path);
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kTimelineFormatVersion) {
    throw std::runtime_error("timeline: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  const std::uint32_t series = get_u32(header + 8);
  if (series != kTimelineSeriesCount) {
    throw std::runtime_error("timeline: series count mismatch in " + path +
                             " (file has " + std::to_string(series) + ")");
  }
  if (tick_seconds != nullptr) *tick_seconds = bits_double(get_u64(header + 16));
  const std::uint64_t count = get_u64(header + 24);
  out.reserve(static_cast<std::size_t>(count));
  unsigned char record[kTimelineRecordBytes];
  std::uint32_t crc = crc32_init();
  for (std::uint64_t i = 0; i < count; ++i) {
    if (std::fread(record, 1, sizeof(record), file.get()) !=
        sizeof(record)) {
      throw std::runtime_error("timeline: truncated record in " + path);
    }
    crc = crc32_update(crc, record, sizeof(record));
    out.push_back(decode_record(record));
  }
  unsigned char trailer[4];
  if (std::fread(trailer, 1, sizeof(trailer), file.get()) !=
      sizeof(trailer)) {
    throw std::runtime_error("timeline: truncated checksum in " + path);
  }
  if (get_u32(trailer) != crc32_final(crc)) {
    throw std::runtime_error("timeline: checksum mismatch in " + path);
  }
  if (std::fread(record, 1, 1, file.get()) == 1) {
    throw std::runtime_error("timeline: trailing bytes in " + path);
  }
  return true;
}

void write_timeline_counter_events(std::ostream& out,
                                   const std::vector<TimelinePoint>& points,
                                   bool any_prior) {
  bool first = !any_prior;
  char buffer[64];
  auto value = [](const TimelinePoint& p, TimelineSeries s) {
    return p.values[static_cast<std::size_t>(s)];
  };
  for (const TimelinePoint& point : points) {
    std::snprintf(buffer, sizeof(buffer), "%.3f", point.time * 1e6);
    // Three stacked counter tracks per shard.  The shard index is folded
    // into the track name: chrome://tracing keys counters by (pid, name),
    // so a plain tid would collapse shards into one series.
    out << (first ? "" : ",") << "\n  {\"name\":\"queries[s" << point.shard
        << "]\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":" << buffer
        << ",\"pid\":3,\"tid\":" << point.shard << ",\"args\":{"
        << "\"north_america\":" << value(point, TimelineSeries::kQueriesNorthAmerica)
        << ",\"europe\":" << value(point, TimelineSeries::kQueriesEurope)
        << ",\"asia\":" << value(point, TimelineSeries::kQueriesAsia)
        << ",\"other\":" << value(point, TimelineSeries::kQueriesOther)
        << ",\"hits\":" << value(point, TimelineSeries::kQueryHits) << "}}";
    first = false;
    out << ",\n  {\"name\":\"sessions[s" << point.shard
        << "]\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":" << buffer
        << ",\"pid\":3,\"tid\":" << point.shard << ",\"args\":{"
        << "\"active\":" << value(point, TimelineSeries::kActiveSessions)
        << ",\"started\":" << value(point, TimelineSeries::kSessionsStarted)
        << ",\"ended\":" << value(point, TimelineSeries::kSessionsEnded) << "}}";
    out << ",\n  {\"name\":\"drops[s" << point.shard
        << "]\",\"cat\":\"timeline\",\"ph\":\"C\",\"ts\":" << buffer
        << ",\"pid\":3,\"tid\":" << point.shard << ",\"args\":{"
        << "\"shed_queries\":" << value(point, TimelineSeries::kShedQueries)
        << ",\"shed_connections\":" << value(point, TimelineSeries::kShedConnections)
        << ",\"loss\":" << value(point, TimelineSeries::kDropLoss)
        << ",\"corrupted\":" << value(point, TimelineSeries::kDropCorrupted)
        << ",\"dead_link\":" << value(point, TimelineSeries::kDropDeadLink)
        << ",\"duplicate\":" << value(point, TimelineSeries::kDropDuplicate)
        << "}}";
  }
}

}  // namespace p2pgen::obs
