// p2pgen — metrics registry (observability layer, DESIGN.md §8).
//
// Named counters, gauges and fixed-bucket histograms for every layer of
// the pipeline (simulation, measurement node, fault injector, thread
// pool, analysis passes).  Design constraints, in order:
//
//   1. *Strictly observational.*  Metrics never feed back into
//      simulation or analysis state: a registry records what happened,
//      it cannot change what happens.  The byte-identity contract of
//      `simulate_trace_sharded` and the bit-identity contract of the
//      parallel analysis passes are untouched with instrumentation on,
//      off, or absent (tests/test_obs.cpp enforces this at 1/2/8
//      threads).
//   2. *Hot paths stay hot.*  Counter cells live in thread-local shards,
//      so an increment is one relaxed fetch_add on a cell no other
//      thread writes — no locks, no shared-cache-line contention.
//      Shards are merged only when a snapshot is taken.
//   3. *Disabled means free.*  A default-constructed handle, or any
//      handle of a disabled registry, reduces to a single predictable
//      branch; no TLS lookup, no store.  Binaries that never ask for a
//      snapshot pay nothing on the paths they exercise.
//
// Deterministic counters (simulation / analysis totals) are identical
// for any thread count because the *work* is deterministic; scheduler
// counters (pool steals, per-worker executed) are intentionally not —
// they describe the actual schedule.  The split is by name prefix:
// everything under "pool." is schedule-dependent, the rest is not.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace p2pgen::obs {

class Registry;

/// Merged view of a registry at one point in time.  Values are summed
/// across all thread-local shards; entries are sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;          ///< upper bounds, ascending
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;             ///< total observations
    std::uint64_t sum = 0;               ///< sum of llround()ed values
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by exact name; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  /// Value of a gauge by exact name; 0 when absent.
  std::int64_t gauge_value(std::string_view name) const noexcept;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;
  /// Prometheus text exposition ('.' in names becomes '_').
  void write_prometheus(std::ostream& out) const;
};

/// Escapes a Prometheus label value per the text exposition format:
/// backslash -> \\, double quote -> \", newline -> \n.
std::string prometheus_escape_label(std::string_view value);

/// Monotone event counter.  Trivially copyable; a default-constructed
/// handle is unbound and every operation on it is a no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  Registry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Point-in-time value (thread counts, queue depths).  Stored centrally
/// (one atomic per gauge): gauges are low-frequency by design.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept;
  void add(std::int64_t v) const noexcept;
  /// Monotone high-water update: keeps max(current, v).
  void record_max(std::int64_t v) const noexcept;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram: bounds are set at registration and never
/// change, so observe() is a binary search plus two sharded increments.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class Registry;
  struct Meta;
  Histogram(Registry* registry, const Meta* meta)
      : registry_(registry), meta_(meta) {}
  Registry* registry_ = nullptr;
  const Meta* meta_ = nullptr;
};

/// Metric namespace + storage.  Registration is idempotent by name and
/// thread-safe; handles stay valid for the registry's lifetime.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  /// Enabled by default (the cost is a relaxed add on a private cell).
  static Registry& global();

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` are ascending upper bucket bounds; values above the last
  /// bound land in the overflow bucket.  Re-registering a histogram name
  /// returns the existing instance (bounds of the first call win).
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merges all shards into a snapshot.  Safe to call while other
  /// threads keep incrementing (their updates land in a later snapshot).
  MetricsSnapshot snapshot() const;

  /// Snapshot relative to an earlier one: counters and histogram
  /// buckets/count/sum have `since`'s values subtracted (clamped at 0 if
  /// a reset intervened); metrics absent from `since` pass through
  /// whole; gauges are point-in-time and pass through unchanged.  This
  /// is the per-phase delta benches and the pipeline previously computed
  /// by hand.
  MetricsSnapshot delta(const MetricsSnapshot& since) const;

  /// Zeroes every cell and gauge.  Names and handles stay registered.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  /// Cells per thread-local shard.  Fixed at shard creation so snapshot
  /// can read a shard while its owner keeps writing — no reallocation
  /// ever happens.  4096 cells x 8 B = 32 KiB per writing thread.
  static constexpr std::size_t kMaxCells = 4096;

  struct Shard {
    std::thread::id owner;
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  };

  std::atomic<std::uint64_t>* cells_for_this_thread() const;
  Shard* acquire_shard() const;
  std::uint32_t allocate_cells(std::uint32_t n);
  std::uint64_t sum_cell(std::uint32_t cell) const;

  const std::uint64_t id_;  ///< process-unique, validates the TLS cache
  std::atomic<bool> enabled_{true};

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::uint32_t>> counters_;  // name, cell
  std::vector<std::pair<std::string, std::uint32_t>> gauges_;  // name, index
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauge_values_;
  /// unique_ptr keeps each meta at a stable address: bound Histogram
  /// handles read their meta lock-free while registration appends.
  std::vector<std::unique_ptr<Histogram::Meta>> histograms_;
  std::uint32_t next_cell_ = 0;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace p2pgen::obs
