// p2pgen — phase/span tracing (observability layer, DESIGN.md §8).
//
// RAII wall-clock timers around pipeline phases: per-shard trace
// simulation, trace merge, the individual filter rules, session
// measures, Appendix fits, ECDF builds, and thread-pool drain loops.
// Completed spans are collected by a TraceLog and exported two ways:
//
//   * chrome://tracing / Perfetto JSON (write_chrome_json) — load the
//     file in a Chromium browser's about:tracing (or ui.perfetto.dev)
//     to see the pipeline's phases per thread on a timeline;
//   * a plain-text per-phase summary (write_summary) — count, total,
//     mean and max duration per span name.
//
// Spans measure *wall clock* and are therefore never deterministic;
// like the metrics registry they are strictly observational and record
// nothing that feeds back into simulation or analysis state.  The
// global log starts disabled: an ObsSpan constructed against a disabled
// log stores nothing and costs one branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace p2pgen::obs {

/// Thread-safe collector of completed spans.
class TraceLog {
 public:
  struct Span {
    std::string name;
    std::uint32_t tid = 0;       ///< small per-thread id (0 = first seen)
    std::uint64_t start_us = 0;  ///< microseconds since the process epoch
    std::uint64_t duration_us = 0;
  };

  /// The process-wide log every built-in ObsSpan site uses.  Disabled by
  /// default: tracing buffers grow without bound while enabled, so it is
  /// opt-in (e.g. measurement_pipeline --trace-json=...).
  static TraceLog& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the process-wide steady-clock epoch.
  static std::uint64_t now_us() noexcept;

  /// Appends a completed span (thread-safe, even while disabled — the
  /// enabled flag only gates the ObsSpan call sites).
  void record(std::string name, std::uint64_t start_us,
              std::uint64_t duration_us);

  std::vector<Span> spans() const;
  std::size_t size() const;
  void clear();

  /// chrome://tracing "trace event" JSON: {"traceEvents":[...]}, one
  /// complete ("ph":"X") event per span, timestamps in microseconds.
  void write_chrome_json(std::ostream& out) const;

  /// Same, with a hook that may append extra trace-event fragments
  /// (e.g. obs::write_qtrace_flow_events) before the closing bracket.
  /// The hook receives (out, any_prior): whether any event has already
  /// been written, so it knows whether its first fragment needs a
  /// leading comma.
  void write_chrome_json(
      std::ostream& out,
      const std::function<void(std::ostream&, bool)>& extra_events) const;

  /// Per-name aggregate table: count, total ms, mean ms, max ms.
  void write_summary(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

/// RAII span: records [construction, destruction) into a TraceLog.
/// When the log is disabled at construction time the span is inert.
class ObsSpan {
 public:
  explicit ObsSpan(std::string_view name) : ObsSpan(name, TraceLog::global()) {}
  ObsSpan(std::string_view name, TraceLog& log);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  TraceLog* log_ = nullptr;  ///< null when the log was disabled
  std::string name_;
  std::uint64_t start_us_ = 0;
};

}  // namespace p2pgen::obs
