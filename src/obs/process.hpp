// p2pgen — process-level observability: peak memory of this process.
//
// The streaming-analysis memory gate (bench/bench_streaming.cpp, CI
// memory-regression job) compares the peak RSS of a materialized
// pipeline run against a streaming one.  Peak RSS is a process-lifetime
// high-water mark, so each candidate runs in its own child process and
// reports this number; the gauge lets any long-lived binary expose the
// same figure in its metrics snapshot.
#pragma once

#include <cstdint>

namespace p2pgen::obs {

/// Peak resident set size of the calling process, in bytes (getrusage
/// ru_maxrss; 0 on platforms without it).  Monotone over the process
/// lifetime — it never goes down, which is exactly what a memory gate
/// wants and why per-phase deltas are meaningless.
std::uint64_t process_peak_rss_bytes();

/// Current (instantaneous) resident set size of the calling process, in
/// bytes (/proc/self/statm on Linux; falls back to the peak elsewhere,
/// 0 on platforms with neither).  Unlike the peak this goes *down* when
/// memory is returned, so periodic samples of it — the heartbeat channel
/// of behavior/checkpoint — show the live footprint of a long run.
std::uint64_t process_current_rss_bytes();

/// Records the current peak RSS in the global registry gauge
/// "process.peak_rss_bytes" (record_max: snapshots taken later keep the
/// high-water mark) and the instantaneous RSS in "process.rss_bytes"
/// (set: last sample wins).  No-op while the registry is disabled.
void publish_process_metrics();

}  // namespace p2pgen::obs
