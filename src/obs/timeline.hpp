// p2pgen — sim-time metric timelines (observability layer, DESIGN.md §13).
//
// Time-resolved counterparts of the run-total metrics: per-shard periodic
// snapshots of a fixed, declared set of series (query arrivals, QUERYHIT
// arrivals, session starts/ends, the active-session level, degradation
// sheds, fault-layer drops by reason, and per-region query arrivals)
// taken at fixed sim-time ticks.  The registry of PR 3 collapses a run
// into totals and qtrace (PR 8) follows individual queries; the timeline
// is the middle scale — it is what makes the diurnal structure the paper
// conditions everything on (§4, peak vs non-peak) *visible* in our own
// output, and what a long run's health can be judged against while it is
// still going.
//
// Design constraints, in the repo's usual order:
//
//   1. *Strictly observational.*  Recording never feeds back into the
//      simulation: a run with timelines at any tick rate is byte-identical
//      (trace::binary_digest) to a run without the subsystem.  There are
//      deliberately NO simulator-scheduled tick events — a scheduled tick
//      would interleave with workload events in the queue and perturb
//      event ids.  Instead the recorder advances lazily: every observation
//      carries its sim time, and crossing a tick boundary closes the
//      elapsed ticks retroactively.  finish() flushes the trailing ticks
//      (including empty ones) up to the horizon, so every shard emits the
//      same tick grid no matter where its last event fell.
//   2. *Deterministic at any thread count.*  Tick boundaries are computed
//      as gate + k * tick with an integer k (no accumulated floating-point
//      steps), per-shard buffers merge in the same stable (time, shard
//      index) order as trace::merge_traces / merge_qtrace, and wall-clock
//      quantities (RSS, events/sec) are deliberately excluded — those live
//      in the heartbeat channel (behavior/checkpoint), not here.
//   3. *Zero-cost when disabled.*  tick_seconds = 0 constructs nothing;
//      every instrumentation site is a single null-pointer check.
//
// Like the rest of obs/, this header depends on nothing but the C++
// standard library: region classification happens at the call site (the
// behavior layer owns the GeoIP database), the recorder just takes a
// series index.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace p2pgen::obs {

/// Timeline knobs carried by TraceSimulationConfig.  Deliberately NOT
/// part of simulation_config_digest: timelines are observational, so two
/// configs differing only here still produce the same trace (and may
/// share bench caches and durable-run identities).
struct TimelineConfig {
  /// Sim-seconds per tick.  0 disables the subsystem entirely.  The
  /// paper's time-of-day axes make 600 (10 sim-minutes) the natural
  /// default for diurnal figures; callers opt in explicitly.
  double tick_seconds = 0.0;

  /// Tick 0 starts here (the warm-up gate — set by TraceSimulation to
  /// match the trace's own gate, not by users).  Counts before the gate
  /// are dropped; gauge levels still update so the level is correct when
  /// the first tick closes.
  double gate_time = 0.0;
};

/// The declared series set.  Values are wire-stable: they index the
/// per-tick value arrays written to the timeline sidecar files, so
/// renumbering or appending is a format break (bump the format version
/// and kTimelineSeriesCount together).
enum class TimelineSeries : std::uint8_t {
  kQueries = 0,           ///< QUERY messages recorded by the node
  kQueryHits = 1,         ///< QUERYHIT messages recorded by the node
  kSessionsStarted = 2,   ///< completed handshakes (one per session)
  kSessionsEnded = 3,     ///< session terminations
  kActiveSessions = 4,    ///< GAUGE: open sessions at tick close
  kShedQueries = 5,       ///< degradation valve dropped a query
  kShedConnections = 6,   ///< admission valve refused a handshake
  kDropLoss = 7,          ///< fault layer lost a descriptor on the wire
  kDropCorrupted = 8,     ///< fault layer damaged wire bytes in flight
  kDropDeadLink = 9,      ///< swallowed by a half-open link / crash
  kDropDuplicate = 10,    ///< GUID already routed: not forwarded
  kQueriesNorthAmerica = 11,  ///< per-region query arrivals...
  kQueriesEurope = 12,
  kQueriesAsia = 13,
  kQueriesOther = 14,     ///< ...unknown-IP queries land here too
};
inline constexpr std::size_t kTimelineSeriesCount = 15;

/// Stable lower_snake_case name of a series (CSV headers, JSON, metrics).
const char* timeline_series_name(TimelineSeries series) noexcept;

/// True for level series (recorded as the running level at tick close)
/// as opposed to count series (zeroed at every tick boundary).
constexpr bool timeline_series_is_gauge(TimelineSeries series) noexcept {
  return series == TimelineSeries::kActiveSessions;
}

/// One tick of one shard: the tick's START time (gate + k * tick), the
/// shard index (assigned by merge_timeline), and one value per series.
struct TimelinePoint {
  double time = 0.0;
  std::uint32_t shard = 0;
  std::array<std::uint64_t, kTimelineSeriesCount> values{};
};

bool operator==(const TimelinePoint& a, const TimelinePoint& b) noexcept;

/// Per-shard tick recorder.  Single-threaded like the shard simulation it
/// instruments; TraceSimulation owns one per run and hands the raw
/// pointer to the transport and the measurement node.  Only constructed
/// when tick_seconds > 0, so instrumentation sites gate on the pointer.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(const TimelineConfig& config);

  double tick_seconds() const noexcept { return tick_; }

  /// Adds `n` to a count series in the tick containing `time`.  Counts
  /// before the gate are dropped.  Times must be non-decreasing (they
  /// come from the simulator clock).
  void count(double time, TimelineSeries series, std::uint64_t n = 1);

  /// Applies a +-delta to a gauge series' running level.  Level updates
  /// are applied even before the gate — the warm-up builds up real state
  /// (open sessions) that the first tick must see — but no tick closes
  /// before the gate.
  void level(double time, TimelineSeries series, std::int64_t delta);

  /// Flushes every tick whose start lies in [gate, end_time), including
  /// trailing empty ones, so all shards of one run emit the identical
  /// tick grid.  Call exactly once, with the simulation horizon.
  void finish(double end_time);

  const std::vector<TimelinePoint>& points() const noexcept { return points_; }
  std::vector<TimelinePoint> take() noexcept { return std::move(points_); }

 private:
  void advance_to(double time);
  void close_tick();

  double tick_ = 0.0;
  double gate_ = 0.0;
  std::uint64_t next_tick_ = 0;  ///< index of the first unclosed tick
  std::array<std::uint64_t, kTimelineSeriesCount> counts_{};
  std::array<std::int64_t, kTimelineSeriesCount> levels_{};
  std::vector<TimelinePoint> points_;
};

/// Merges per-shard buffers (each time-nondecreasing) into one stream in
/// stable (time, shard index, within-shard position) order — the exact
/// order trace::merge_traces pins — and stamps each point's `shard`.
/// Shards of one run share the tick grid, so the merged stream is
/// (tick 0: shard 0..n-1), (tick 1: shard 0..n-1), ...
std::vector<TimelinePoint> merge_timeline(
    std::vector<std::vector<TimelinePoint>> shards);

/// FNV-1a over the serialized point stream: the bit-identity handle the
/// determinism tests and the CI jobs compare.
std::uint64_t timeline_digest(const std::vector<TimelinePoint>& points) noexcept;

/// Registers and fills the derived aggregates in the global registry:
/// "timeline.points", per-series run totals ("timeline.total.queries",
/// ...) and the peak active-session level ("timeline.peak.active_sessions"
/// gauge).  Call exactly once per analysis with the MERGED stream —
/// aggregation over the merged order is what makes the numbers identical
/// at any thread count, and what lets the streaming path reproduce them
/// exactly from the sidecar files.
void publish_timeline_metrics(const std::vector<TimelinePoint>& merged);

/// "<shard_dir>/timeline.bin" — the per-shard sidecar the durable runner
/// writes next to the trace spool and the streaming pass reads back.
std::string timeline_sidecar_path(const std::string& shard_dir);

/// Writes the sidecar atomically (tmp + rename).  An empty point list
/// still writes a valid zero-count file: its presence is how readers know
/// timelines were enabled for the run.
void save_timeline(const std::string& path,
                   const std::vector<TimelinePoint>& points,
                   double tick_seconds);

/// Loads a sidecar into `out` (replacing its contents), storing the
/// file's tick length into *tick_seconds when non-null.  Returns false —
/// leaving `out` empty — when the file does not exist (a checkpoint from
/// before timelines, or a run with them off).  Throws std::runtime_error
/// on a malformed file.
bool load_timeline(const std::string& path, std::vector<TimelinePoint>& out,
                   double* tick_seconds = nullptr);

/// chrome://tracing counter fragments for the merged stream: "C" events
/// (pid 3, ts = tick start in simulation microseconds) grouped into three
/// stacked tracks per shard — queries by region, session levels, and
/// drops/sheds by reason.  Emits nothing for an empty stream; meant to be
/// passed to TraceLog::write_chrome_json as the extra-events writer
/// (composable with write_qtrace_flow_events).
void write_timeline_counter_events(std::ostream& out,
                                   const std::vector<TimelinePoint>& points,
                                   bool any_prior);

}  // namespace p2pgen::obs
