#include "obs/qtrace.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/crc32.hpp"
#include "obs/metrics.hpp"

namespace p2pgen::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t hash, const void* data,
                          std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// The sampling mix: FNV-1a over the key's little-endian bytes.  GUID
/// hashes are already well distributed, but mixing again keeps the
/// decision independent of how GuidHash folds bits (and of any future
/// change to the key's provenance).
std::uint64_t sample_mix(std::uint64_t query) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (int i = 0; i < 8; ++i) {
    hash ^= (query >> (8 * i)) & 0xffU;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t sample_threshold(double rate) noexcept {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  // 2^64 * rate, computed in long double so rates near 1 don't round to
  // exactly 2^64 (which would overflow the cast).
  const long double scaled =
      static_cast<long double>(rate) * 18446744073709551616.0L;
  if (scaled >= 18446744073709551615.0L) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(scaled);
}

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Sidecar wire format (all little-endian):
///   "p2pq" | u32 version | u64 count | count * 32-byte records
/// Record: u64 time_bits | u64 query | u64 value_bits | u32 shard |
///         u8 hop | u8 ttl | u8 hops | u8 pad(0)
constexpr char kQtraceMagic[4] = {'p', '2', 'p', 'q'};
// v2 appends a CRC32 trailer over the record bytes so a resume can tell
// a damaged sidecar from a valid one (and rebuild it, DESIGN.md §14).
constexpr std::uint32_t kQtraceFormatVersion = 2;
constexpr std::size_t kQtraceRecordBytes = 32;

void put_u32(unsigned char* out, std::uint32_t v) noexcept {
  out[0] = static_cast<unsigned char>(v & 0xffU);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xffU);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xffU);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xffU);
}

void put_u64(unsigned char* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffU);
  }
}

std::uint32_t get_u32(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

/// Record layout: time_bits u64 | query u64 | value is folded into the
/// digest/serialization as u64 bits, shard u32, then hop/ttl/hops/pad.
/// Exactly kQtraceRecordBytes.
void encode_record(unsigned char* out, const QueryHopEvent& e) noexcept {
  put_u64(out + 0, double_bits(e.time));
  put_u64(out + 8, e.query);
  put_u64(out + 16, double_bits(e.value));
  put_u32(out + 24, e.shard);
  out[28] = static_cast<unsigned char>(e.hop);
  out[29] = e.ttl;
  out[30] = e.hops;
  out[31] = 0;
}

QueryHopEvent decode_record(const unsigned char* in) {
  QueryHopEvent e;
  e.time = bits_double(get_u64(in + 0));
  e.query = get_u64(in + 8);
  e.value = bits_double(get_u64(in + 16));
  e.shard = get_u32(in + 24);
  if (in[28] >= kQueryHopCount) {
    throw std::runtime_error("qtrace: unknown hop kind " +
                             std::to_string(int{in[28]}));
  }
  e.hop = static_cast<QueryHop>(in[28]);
  e.ttl = in[29];
  e.hops = in[30];
  return e;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::FILE* file) : file_(file) {}
  ~ScopedFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  ScopedFile(const ScopedFile&) = delete;
  ScopedFile& operator=(const ScopedFile&) = delete;
  std::FILE* get() const noexcept { return file_; }
  int close() {
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc;
  }

 private:
  std::FILE* file_;
};

}  // namespace

const char* query_hop_name(QueryHop hop) noexcept {
  switch (hop) {
    case QueryHop::kQueryEmitted: return "query_emitted";
    case QueryHop::kQueryReceived: return "query_received";
    case QueryHop::kForwarded: return "forwarded";
    case QueryHop::kDuplicateDropped: return "duplicate_dropped";
    case QueryHop::kTtlExpired: return "ttl_expired";
    case QueryHop::kQrpSuppressed: return "qrp_suppressed";
    case QueryHop::kShed: return "shed";
    case QueryHop::kDropLoss: return "loss";
    case QueryHop::kCorrupted: return "corrupted";
    case QueryHop::kDropDeadLink: return "dead_link";
    case QueryHop::kHitEmitted: return "hit_emitted";
    case QueryHop::kHitReceived: return "hit_received";
    case QueryHop::kHitReturned: return "hit_returned";
  }
  return "unknown";
}

bool operator==(const QueryHopEvent& a, const QueryHopEvent& b) noexcept {
  return double_bits(a.time) == double_bits(b.time) && a.query == b.query &&
         a.shard == b.shard && a.hop == b.hop && a.ttl == b.ttl &&
         a.hops == b.hops && double_bits(a.value) == double_bits(b.value);
}

bool qtrace_sampled(std::uint64_t query, double sample_rate) noexcept {
  if (!(sample_rate > 0.0)) return false;
  if (sample_rate >= 1.0) return true;
  return sample_mix(query) < sample_threshold(sample_rate);
}

QueryTracer::QueryTracer(const QtraceConfig& config)
    : threshold_(sample_threshold(config.sample_rate)),
      always_(config.sample_rate >= 1.0),
      gate_(config.gate_time) {}

bool QueryTracer::sampled(std::uint64_t query) const noexcept {
  if (always_) return true;
  if (threshold_ == 0) return false;
  return sample_mix(query) < threshold_;
}

void QueryTracer::record(double time, std::uint64_t query, QueryHop hop,
                         std::uint8_t ttl, std::uint8_t hops, double value) {
  if (time < gate_) return;
  QueryHopEvent event;
  event.time = time;
  event.query = query;
  event.hop = hop;
  event.ttl = ttl;
  event.hops = hops;
  event.value = value;
  events_.push_back(event);
}

void QueryTracer::record_query_emitted(double time, std::uint64_t query,
                                       std::uint8_t ttl, std::uint8_t hops) {
  // The latency clock starts at the FIRST emission even during warm-up,
  // so hits answered after the gate still measure from the true emit.
  first_emit_.emplace(query, time);
  record(time, query, QueryHop::kQueryEmitted, ttl, hops);
}

double QueryTracer::latency_since_emit(std::uint64_t query,
                                       double now) const noexcept {
  const auto it = first_emit_.find(query);
  if (it == first_emit_.end()) return -1.0;
  return now - it->second;
}

std::vector<QueryHopEvent> merge_qtrace(
    std::vector<std::vector<QueryHopEvent>> shards) {
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<QueryHopEvent> merged;
  merged.reserve(total);

  // Same k-way merge discipline as trace::merge_traces: repeatedly take
  // the head with the strictly smallest time, scanning shards in
  // ascending index so ties resolve to the lowest shard, and events
  // within one shard keep their recorded order.
  std::vector<std::size_t> cursor(shards.size(), 0);
  while (merged.size() < total) {
    std::size_t best = shards.size();
    for (std::size_t k = 0; k < shards.size(); ++k) {
      if (cursor[k] >= shards[k].size()) continue;
      if (best == shards.size() ||
          shards[k][cursor[k]].time < shards[best][cursor[best]].time) {
        best = k;
      }
    }
    QueryHopEvent event = shards[best][cursor[best]++];
    event.shard = static_cast<std::uint32_t>(best);
    merged.push_back(event);
  }
  return merged;
}

std::uint64_t qtrace_digest(
    const std::vector<QueryHopEvent>& events) noexcept {
  std::uint64_t hash = kFnvOffset;
  unsigned char record[kQtraceRecordBytes];
  for (const QueryHopEvent& event : events) {
    encode_record(record, event);
    hash = fnv1a_bytes(hash, record, sizeof(record));
  }
  return hash;
}

void publish_qtrace_metrics(const std::vector<QueryHopEvent>& merged) {
  auto& registry = Registry::global();

  auto events_total = registry.counter("qtrace.events");
  auto sampled_queries = registry.counter("qtrace.sampled_queries");
  std::array<Counter, kQueryHopCount> per_hop = {
      registry.counter("qtrace.emitted.query"),
      registry.counter("qtrace.received.query"),
      registry.counter("qtrace.forwarded"),
      registry.counter("qtrace.drop.duplicate"),
      registry.counter("qtrace.drop.ttl_expired"),
      registry.counter("qtrace.drop.qrp_suppressed"),
      registry.counter("qtrace.drop.shed"),
      registry.counter("qtrace.drop.loss"),
      registry.counter("qtrace.drop.corrupted"),
      registry.counter("qtrace.drop.dead_link"),
      registry.counter("qtrace.emitted.hit"),
      registry.counter("qtrace.received.hit"),
      registry.counter("qtrace.hit_returned"),
  };

  // Hop counts cluster at small integers; fan-out is bounded by the node
  // degree; hit latency spans ms (one-hop answer) to minutes (jitter +
  // retries), so that one is log-spaced.
  auto hop_count = registry.histogram(
      "qtrace.hop_count", {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 9.5});
  auto fanout = registry.histogram(
      "qtrace.fanout", {0.5, 1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5});
  auto hit_latency = registry.histogram(
      "qtrace.hit_latency_seconds",
      {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0});

  // Per-query state for the distinct-query and fan-out aggregates.  The
  // merged order is deterministic, so iteration (and therefore every
  // number below) is identical at any thread count.
  struct QueryAgg {
    std::uint64_t forwards = 0;
    bool received = false;
  };
  std::unordered_map<std::uint64_t, QueryAgg> per_query;
  per_query.reserve(merged.size() / 4 + 1);

  for (const QueryHopEvent& event : merged) {
    events_total.add(1);
    per_hop[static_cast<std::size_t>(event.hop)].add(1);
    switch (event.hop) {
      case QueryHop::kQueryReceived:
        hop_count.observe(static_cast<double>(event.hops));
        per_query[event.query].received = true;
        break;
      case QueryHop::kForwarded:
        per_query[event.query].forwards += 1;
        break;
      case QueryHop::kQueryEmitted:
        per_query[event.query];  // counts as a distinct sampled query
        break;
      case QueryHop::kHitReturned:
        if (event.value >= 0.0) hit_latency.observe(event.value);
        break;
      default:
        break;
    }
  }

  sampled_queries.add(static_cast<std::uint64_t>(per_query.size()));

  // Fan-out is per query that actually reached the node, observed in a
  // deterministic order (sorted keys, not hash order).
  std::vector<std::pair<std::uint64_t, QueryAgg>> ordered(per_query.begin(),
                                                          per_query.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, agg] : ordered) {
    (void)key;
    if (agg.received) fanout.observe(static_cast<double>(agg.forwards));
  }
}

std::string qtrace_sidecar_path(const std::string& shard_dir) {
  return shard_dir + "/qtrace.bin";
}

void save_qtrace(const std::string& path,
                 const std::vector<QueryHopEvent>& events) {
  const std::string tmp = path + ".tmp";
  {
    ScopedFile file(std::fopen(tmp.c_str(), "wb"));
    if (file.get() == nullptr) {
      throw std::runtime_error("qtrace: cannot open " + tmp);
    }
    unsigned char header[16];
    std::memcpy(header, kQtraceMagic, 4);
    put_u32(header + 4, kQtraceFormatVersion);
    put_u64(header + 8, static_cast<std::uint64_t>(events.size()));
    if (std::fwrite(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
      throw std::runtime_error("qtrace: short write to " + tmp);
    }
    unsigned char record[kQtraceRecordBytes];
    std::uint32_t crc = crc32_init();
    for (const QueryHopEvent& event : events) {
      encode_record(record, event);
      crc = crc32_update(crc, record, sizeof(record));
      if (std::fwrite(record, 1, sizeof(record), file.get()) !=
          sizeof(record)) {
        throw std::runtime_error("qtrace: short write to " + tmp);
      }
    }
    unsigned char trailer[4];
    put_u32(trailer, crc32_final(crc));
    if (std::fwrite(trailer, 1, sizeof(trailer), file.get()) !=
        sizeof(trailer)) {
      throw std::runtime_error("qtrace: short write to " + tmp);
    }
    if (std::fflush(file.get()) != 0 || file.close() != 0) {
      throw std::runtime_error("qtrace: flush failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("qtrace: rename failed for " + path);
  }
}

bool load_qtrace(const std::string& path, std::vector<QueryHopEvent>& out) {
  out.clear();
  ScopedFile file(std::fopen(path.c_str(), "rb"));
  if (file.get() == nullptr) return false;

  unsigned char header[16];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    throw std::runtime_error("qtrace: truncated header in " + path);
  }
  if (std::memcmp(header, kQtraceMagic, 4) != 0) {
    throw std::runtime_error("qtrace: bad magic in " + path);
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kQtraceFormatVersion) {
    throw std::runtime_error("qtrace: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  const std::uint64_t count = get_u64(header + 8);
  out.reserve(static_cast<std::size_t>(count));
  unsigned char record[kQtraceRecordBytes];
  std::uint32_t crc = crc32_init();
  for (std::uint64_t i = 0; i < count; ++i) {
    if (std::fread(record, 1, sizeof(record), file.get()) !=
        sizeof(record)) {
      throw std::runtime_error("qtrace: truncated record in " + path);
    }
    crc = crc32_update(crc, record, sizeof(record));
    out.push_back(decode_record(record));
  }
  unsigned char trailer[4];
  if (std::fread(trailer, 1, sizeof(trailer), file.get()) !=
      sizeof(trailer)) {
    throw std::runtime_error("qtrace: truncated checksum in " + path);
  }
  if (get_u32(trailer) != crc32_final(crc)) {
    throw std::runtime_error("qtrace: checksum mismatch in " + path);
  }
  if (std::fread(record, 1, 1, file.get()) == 1) {
    throw std::runtime_error("qtrace: trailing bytes in " + path);
  }
  return true;
}

void write_qtrace_json(std::ostream& out,
                       const std::vector<QueryHopEvent>& events) {
  out << "{\n  \"qtrace\": [";
  bool first = true;
  char buffer[64];
  for (const QueryHopEvent& event : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    std::snprintf(buffer, sizeof(buffer), "%.9f", event.time);
    out << "    {\"t\": " << buffer << ", \"query\": \"";
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(event.query));
    out << buffer << "\", \"shard\": " << event.shard << ", \"hop\": \""
        << query_hop_name(event.hop) << "\", \"ttl\": " << int{event.ttl}
        << ", \"hops\": " << int{event.hops};
    if (event.value >= 0.0) {
      std::snprintf(buffer, sizeof(buffer), "%.9f", event.value);
      out << ", \"latency_s\": " << buffer;
    }
    out << "}";
  }
  out << "\n  ],\n  \"count\": " << events.size() << "\n}\n";
}

void write_qtrace_flow_events(std::ostream& out,
                              const std::vector<QueryHopEvent>& events,
                              bool any_prior) {
  // Per-query positions so each journey becomes one flow chain: the
  // first hop starts ("s") the flow, intermediate hops pass it through
  // ("t"), the last hop ends it ("f").
  std::unordered_map<std::uint64_t, std::uint64_t> remaining;
  for (const QueryHopEvent& event : events) ++remaining[event.query];
  std::unordered_map<std::uint64_t, bool> started;

  bool first = !any_prior;
  char buffer[64];
  for (const QueryHopEvent& event : events) {
    const double ts_us = event.time * 1e6;
    const std::uint64_t left = --remaining[event.query];
    bool& begun = started[event.query];

    std::snprintf(buffer, sizeof(buffer), "%.3f", ts_us);
    // A short visible slice at the hop, so the flow arrows have anchors.
    out << (first ? "" : ",") << "\n  {\"name\":\""
        << query_hop_name(event.hop) << "\",\"cat\":\"qtrace\",\"ph\":\"X\""
        << ",\"ts\":" << buffer << ",\"dur\":50,\"pid\":2,\"tid\":"
        << event.shard << ",\"args\":{\"query\":\"";
    first = false;
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(event.query));
    out << buffer << "\",\"ttl\":" << int{event.ttl}
        << ",\"hops\":" << int{event.hops} << "}}";

    const char* phase = !begun ? "s" : (left == 0 ? "f" : "t");
    // Single-event journeys need no arrow.
    if (begun || left > 0) {
      std::snprintf(buffer, sizeof(buffer), "%.3f", ts_us);
      out << ",\n  {\"name\":\"query\",\"cat\":\"qtrace\",\"ph\":\"" << phase
          << "\"";
      if (phase[0] == 'f') out << ",\"bp\":\"e\"";
      out << ",\"ts\":" << buffer << ",\"pid\":2,\"tid\":" << event.shard
          << ",\"id\":\"";
      std::snprintf(buffer, sizeof(buffer), "%016llx",
                    static_cast<unsigned long long>(event.query));
      out << buffer << "\"}";
    }
    begun = true;
  }
}

}  // namespace p2pgen::obs
