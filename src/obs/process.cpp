#include "obs/process.hpp"

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace p2pgen::obs {

std::uint64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux and the BSDs report kibibytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

void publish_process_metrics() {
  auto& registry = Registry::global();
  if (!registry.enabled()) return;
  registry.gauge("process.peak_rss_bytes")
      .record_max(static_cast<std::int64_t>(process_peak_rss_bytes()));
}

}  // namespace p2pgen::obs
