#include "obs/process.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(__linux__)
#include <unistd.h>
#endif

namespace p2pgen::obs {

std::uint64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux and the BSDs report kibibytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

std::uint64_t process_current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm field 2 is the resident page count.
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm != nullptr) {
    unsigned long long total = 0;
    unsigned long long resident = 0;
    const int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
    std::fclose(statm);
    if (fields == 2) {
      const long page = ::sysconf(_SC_PAGESIZE);
      return static_cast<std::uint64_t>(resident) *
             static_cast<std::uint64_t>(page > 0 ? page : 4096);
    }
  }
#endif
  return process_peak_rss_bytes();
}

void publish_process_metrics() {
  auto& registry = Registry::global();
  if (!registry.enabled()) return;
  registry.gauge("process.peak_rss_bytes")
      .record_max(static_cast<std::int64_t>(process_peak_rss_bytes()));
  registry.gauge("process.rss_bytes")
      .set(static_cast<std::int64_t>(process_current_rss_bytes()));
}

}  // namespace p2pgen::obs
