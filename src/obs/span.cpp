#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <ostream>

namespace p2pgen::obs {
namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Small dense per-thread ids for the chrome://tracing "tid" field.
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void write_json_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c; break;
    }
  }
}

}  // namespace

TraceLog& TraceLog::global() {
  static TraceLog* const instance = new TraceLog;  // intentionally leaked
  return *instance;
}

std::uint64_t TraceLog::now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

void TraceLog::record(std::string name, std::uint64_t start_us,
                      std::uint64_t duration_us) {
  Span span;
  span.name = std::move(name);
  span.tid = this_thread_tid();
  span.start_us = start_us;
  span.duration_us = duration_us;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<TraceLog::Span> TraceLog::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

void TraceLog::write_chrome_json(std::ostream& out) const {
  write_chrome_json(out, {});
}

void TraceLog::write_chrome_json(
    std::ostream& out,
    const std::function<void(std::ostream&, bool)>& extra_events) const {
  const std::vector<Span> spans = this->spans();
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out << (i == 0 ? "" : ",") << "\n  {\"name\":\"";
    write_json_escaped(out, s.name);
    out << "\",\"cat\":\"p2pgen\",\"ph\":\"X\",\"ts\":" << s.start_us
        << ",\"dur\":" << s.duration_us << ",\"pid\":1,\"tid\":" << s.tid
        << "}";
  }
  if (extra_events) extra_events(out, !spans.empty());
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceLog::write_summary(std::ostream& out) const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;  // ordered: stable, readable output
  for (const Span& s : spans()) {
    Agg& agg = by_name[s.name];
    ++agg.count;
    agg.total_us += s.duration_us;
    agg.max_us = std::max(agg.max_us, s.duration_us);
  }
  out << "phase summary (" << by_name.size() << " span name(s)):\n"
      << "  " << std::left << std::setw(36) << "span" << std::right
      << std::setw(8) << "count" << std::setw(12) << "total ms"
      << std::setw(12) << "mean ms" << std::setw(12) << "max ms" << "\n";
  const auto ms = [](std::uint64_t us) {
    return static_cast<double>(us) / 1000.0;
  };
  for (const auto& [name, agg] : by_name) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(8) << agg.count << std::setw(12) << std::fixed
        << std::setprecision(3) << ms(agg.total_us) << std::setw(12)
        << ms(agg.total_us) / static_cast<double>(agg.count) << std::setw(12)
        << ms(agg.max_us) << "\n";
  }
}

ObsSpan::ObsSpan(std::string_view name, TraceLog& log) {
  if (!log.enabled()) return;
  log_ = &log;
  name_ = std::string(name);
  start_us_ = TraceLog::now_us();
}

ObsSpan::~ObsSpan() {
  if (log_ == nullptr) return;
  log_->record(std::move(name_), start_us_, TraceLog::now_us() - start_us_);
}

}  // namespace p2pgen::obs
