#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace p2pgen::util {

/// One stealable queue.  The mutex is per-queue, so contention is only
/// between an owner popping and a thief stealing from the same queue.
struct ThreadPool::Worker {
  std::mutex mutex;
  std::deque<std::size_t> queue;
  std::thread thread;  // unset for the caller's slot (index 0)
};

/// One batch of indexed tasks, owned by the run_indexed() caller's stack.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* task = nullptr;
  std::vector<std::unique_ptr<Worker>> queues;  // one per participating thread
  std::atomic<std::size_t> remaining{0};
  /// Pool workers currently inside this batch's drain loop.  The batch
  /// lives on the caller's stack, so the caller must not return while a
  /// worker can still dereference it: completion requires remaining == 0
  /// AND active == 0 (a worker that just ran the last task re-polls the
  /// queues once more before leaving the loop).
  std::atomic<int> active{0};

  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_index = 0;

  std::mutex done_mutex;
  std::condition_variable done_cv;

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error || index < error_index) {
      error = std::current_exception();
      error_index = index;
    }
  }
};

struct ThreadPool::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  Batch* current = nullptr;
  std::uint64_t generation = 0;
  bool stop = false;

  /// Serializes run_indexed() callers: one batch at a time per pool.
  std::mutex batch_mutex;
};

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::clamp(threads, 1u, 256u)), shared_(new Shared) {
  executed_ = std::make_unique<std::atomic<std::uint64_t>[]>(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    executed_[i].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->thread = std::thread([this, i] { worker_loop(i); });
    workers_.push_back(std::move(worker));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->stop = true;
  }
  shared_->cv.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

unsigned ThreadPool::recommended_threads() {
  if (const char* env = std::getenv("P2PGEN_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<unsigned>(std::min(n, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool ThreadPool::run_one(std::size_t thread_index, Batch& batch) {
  const std::size_t n = batch.queues.size();
  // Small batches create fewer queue lanes than the pool has threads
  // (lanes = min(threads, count)); surplus workers have no slot and
  // nothing to steal that the laned threads won't finish.
  if (thread_index >= n) return false;
  std::size_t index = 0;
  bool found = false;

  {  // own queue first, front (LIFO locality is irrelevant; FIFO is fine)
    Worker& own = *batch.queues[thread_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      index = own.queue.front();
      own.queue.pop_front();
      found = true;
    }
  }
  for (std::size_t k = 1; !found && k < n; ++k) {  // then steal from the back
    Worker& victim = *batch.queues[(thread_index + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      index = victim.queue.back();
      victim.queue.pop_back();
      found = true;
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!found) return false;

  try {
    (*batch.task)(index);
  } catch (...) {
    batch.record_error(index);
  }
  executed_[thread_index].fetch_add(1, std::memory_order_relaxed);
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(batch.done_mutex);
    batch.done_cv.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(shared_->mutex);
      shared_->cv.wait(lock, [&] {
        return shared_->stop || (shared_->current != nullptr &&
                                 shared_->generation != seen_generation);
      });
      if (shared_->stop) return;
      batch = shared_->current;
      seen_generation = shared_->generation;
      // Register under shared_->mutex: the caller only destroys the batch
      // after clearing `current` under this mutex and seeing active == 0,
      // so the increment can never target a dead batch.
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    {
      // Workers occupy queue slots 1..threads_-1; slot 0 is the caller.
      obs::ObsSpan span("pool.worker_drain");
      while (run_one(worker_index + 1, *batch)) {
      }
    }
    {
      // Notify while still holding the mutex: the moment it is released
      // with active == 0, the caller may destroy the stack-owned batch,
      // so no code after the unlock may touch *batch.
      std::lock_guard<std::mutex> lock(batch->done_mutex);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
      batch->done_cv.notify_all();
    }
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  if (threads_ == 1 || count == 1) {
    // Inline path: index order, first-thrower wins (it is the lowest
    // index by construction), remaining tasks still run — identical
    // semantics to the parallel path.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    executed_[0].fetch_add(count, std::memory_order_relaxed);
    std::size_t depth = max_queue_depth_.load(std::memory_order_relaxed);
    while (count > depth && !max_queue_depth_.compare_exchange_weak(
                                depth, count, std::memory_order_relaxed)) {
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> batch_lock(shared_->batch_mutex);

  Batch batch;
  batch.task = &task;
  const std::size_t lanes = std::min<std::size_t>(threads_, count);
  batch.queues.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    batch.queues.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < count; ++i) {
    batch.queues[i % lanes]->queue.push_back(i);
  }
  batch.remaining.store(count, std::memory_order_relaxed);
  {
    // Queues only ever shrink after setup, so the deepest any lane gets
    // is its initial deal: ceil(count / lanes).
    const std::size_t deal = (count + lanes - 1) / lanes;
    std::size_t depth = max_queue_depth_.load(std::memory_order_relaxed);
    while (deal > depth && !max_queue_depth_.compare_exchange_weak(
                               depth, deal, std::memory_order_relaxed)) {
    }
  }

  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->current = &batch;
    ++shared_->generation;
  }
  shared_->cv.notify_all();

  {
    obs::ObsSpan span("pool.caller_drain");
    while (run_one(0, batch)) {
    }
  }
  // All queues are drained, so late-waking workers have nothing to do:
  // close the batch to new joiners first, then wait until both every task
  // has finished AND every joined worker has left the drain loop — only
  // then is it safe to let the stack-owned batch die.
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->current = nullptr;
  }
  {
    std::unique_lock<std::mutex> lock(batch.done_mutex);
    batch.done_cv.wait(lock, [&] {
      return batch.remaining.load(std::memory_order_acquire) == 0 &&
             batch.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool::Stats ThreadPool::stats() {
  Stats out;
  out.executed.resize(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    out.executed[i] = executed_[i].exchange(0, std::memory_order_relaxed);
  }
  out.steals = steals_.exchange(0, std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.exchange(0, std::memory_order_relaxed);
  return out;
}

void publish_pool_stats(std::string_view prefix,
                        const ThreadPool::Stats& stats) {
  auto& registry = obs::Registry::global();
  const std::string base(prefix);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stats.executed.size(); ++i) {
    total += stats.executed[i];
    registry.counter(base + ".executed.w" + std::to_string(i))
        .add(stats.executed[i]);
  }
  registry.counter(base + ".tasks_executed").add(total);
  registry.counter(base + ".steals").add(stats.steals);
  registry.gauge(base + ".max_queue_depth")
      .record_max(static_cast<std::int64_t>(stats.max_queue_depth));
}

void ThreadPool::for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0 || grain == 0) return;
  const std::size_t chunks = chunk_count(n, grain);
  run_indexed(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(c, begin, end);
  });
}

}  // namespace p2pgen::util
