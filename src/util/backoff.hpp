// p2pgen — shared exponential-backoff policy.
//
// Every retry path in the measurement node (forward-fanout retries from
// PR 1, neighbor replenishment from PR 5, and the scenario layer's
// degradation timers) paces itself with the same capped binary
// exponential backoff, so their timing semantics — and their bounds —
// are unified in one place.
#pragma once

#include <algorithm>

namespace p2pgen::util {

/// Delay of the `attempt`-th retry (0-based) under capped binary
/// exponential backoff: base * 2^attempt, clamped at `cap` seconds when
/// cap > 0 (cap <= 0 means uncapped).  The shift saturates at 2^30 so
/// large attempt counts cannot overflow.
inline double backoff_delay(double base, double cap, int attempt) noexcept {
  const double raw =
      base * static_cast<double>(1ULL << std::min(std::max(attempt, 0), 30));
  return cap > 0.0 ? std::min(raw, cap) : raw;
}

}  // namespace p2pgen::util
