// p2pgen — deterministic work-stealing thread pool.
//
// The parallel execution substrate for sharded simulation and the
// parallel analysis passes.  Design constraints, in order:
//
//   1. *Determinism of results.*  The pool schedules work in any order,
//      so callers must never fold results in completion order.  The two
//      entry points make that easy: run_indexed() gives every task a
//      stable index so outputs go into preallocated slots, and
//      for_chunks() partitions a range into chunks whose boundaries
//      depend only on the range and the requested grain — never on the
//      thread count — so chunk-ordered reductions are byte-identical for
//      any pool size, including 1.
//   2. *Degenerate pool is free.*  ThreadPool(1) spawns no threads at
//      all: the calling thread executes every task inline, in index
//      order.  Serial and parallel runs share one code path.
//   3. *Exception safety.*  A throwing task does not take down a worker;
//      the exception of the lowest-indexed failing task is rethrown on
//      the calling thread after the batch completes (again: which
//      exception wins is deterministic).
//
// Scheduling: each worker owns a deque protected by a small mutex.
// Tasks of a batch are dealt round-robin across workers; a worker pops
// from the front of its own deque and, when empty, steals from the back
// of a victim's.  The calling thread participates as a worker for the
// duration of a batch, so a pool of N uses N threads total, not N+1.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace p2pgen::util {

class ThreadPool {
 public:
  /// A pool that runs batches on `threads` threads total (the caller
  /// counts as one).  `threads` is clamped to [1, 256].
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads a batch runs on (including the caller).
  unsigned size() const noexcept { return threads_; }

  /// Runs `count` tasks, task(i) for i in [0, count), and waits for all
  /// of them.  Tasks may run in any order and concurrently; write
  /// results into slot i of a preallocated buffer.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  /// Partitions [0, n) into chunks of at most `grain` elements and runs
  /// body(chunk_index, begin, end) for each.  Chunk boundaries are a
  /// pure function of (n, grain): chunk c covers
  /// [c * grain, min(n, (c+1) * grain)).  Reductions merged in
  /// chunk-index order are therefore identical for every thread count.
  void for_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t chunk_index,
                                           std::size_t begin,
                                           std::size_t end)>& body);

  /// Number of chunks for_chunks(n, grain, ...) will produce.
  static std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
    return grain == 0 ? 0 : (n + grain - 1) / grain;
  }

  /// Thread count requested by the environment: P2PGEN_THREADS if set
  /// and positive, otherwise std::thread::hardware_concurrency()
  /// (minimum 1).
  static unsigned recommended_threads();

  /// Scheduler counters since the last stats() call.  Unlike every other
  /// number this engine produces, these describe the *actual schedule*
  /// and are therefore not deterministic across runs or thread counts —
  /// they are observability data, never analysis input.
  struct Stats {
    /// Tasks executed per thread slot (slot 0 is the caller).  The sum
    /// IS deterministic: it equals the total task count submitted.
    std::vector<std::uint64_t> executed;
    /// Tasks a thread popped from another thread's queue.
    std::uint64_t steals = 0;
    /// Deepest any per-thread queue has been at batch setup.
    std::size_t max_queue_depth = 0;
  };

  /// Returns the counters accumulated since the previous call and resets
  /// them (reset-on-read), so periodic reporters see per-interval deltas.
  /// Thread-safe, but values are only quiescent between batches.
  Stats stats();

 private:
  struct Worker;
  struct Batch;

  void worker_loop(std::size_t worker_index);
  /// Pops own work or steals; returns false when the batch is drained.
  bool run_one(std::size_t worker_index, Batch& batch);

  unsigned threads_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;  // threads_ - 1 entries
  struct Shared;
  std::unique_ptr<Shared> shared_;

  // Scheduler counters (see Stats).  Per-slot executed counts are padded
  // out by striding would be overkill here: batches are coarse.
  std::unique_ptr<std::atomic<std::uint64_t>[]> executed_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> max_queue_depth_{0};
};

/// Adds a pool's Stats deltas to the global obs registry under
/// `<prefix>.steals`, `<prefix>.tasks_executed`, `<prefix>.executed.w<k>`
/// and the high-water gauge `<prefix>.max_queue_depth`.
void publish_pool_stats(std::string_view prefix, const ThreadPool::Stats& stats);

}  // namespace p2pgen::util
