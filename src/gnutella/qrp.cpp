#include "gnutella/qrp.hpp"

#include <cctype>
#include <stdexcept>

namespace p2pgen::gnutella {
namespace {

/// Splits on whitespace, applying `fn` to each word.
template <typename Fn>
void for_each_word(std::string_view text, Fn&& fn) {
  std::size_t start = 0;
  while (start < text.size()) {
    while (start < text.size() &&
           std::isspace(static_cast<unsigned char>(text[start]))) {
      ++start;
    }
    std::size_t end = start;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (end > start) fn(text.substr(start, end - start));
    start = end;
  }
}

}  // namespace

QrpTable::QrpTable(unsigned log2_size) : log2_size_(log2_size) {
  if (log2_size == 0 || log2_size > 24) {
    throw std::invalid_argument("QrpTable: log2_size must be in [1, 24]");
  }
  bits_.assign(std::size_t{1} << log2_size, false);
}

std::uint32_t QrpTable::hash_keyword(std::string_view keyword, unsigned bits) {
  // Classic QRP v0.1 hash: pack lower-cased bytes into 32-bit words XORed
  // with a rotating mask, then multiplicative hashing (A = 0x4F1BBCDC)
  // keeping the top `bits` bits.
  std::uint32_t xor_acc = 0;
  unsigned shift = 0;
  for (char c : keyword) {
    const auto b = static_cast<std::uint32_t>(
        std::tolower(static_cast<unsigned char>(c)));
    xor_acc ^= (b & 0xFF) << shift;
    shift = (shift + 8) & 0x18;  // 0, 8, 16, 24, 0, ...
  }
  const std::uint64_t product =
      static_cast<std::uint64_t>(xor_acc) * 0x4F1BBCDCULL;
  return static_cast<std::uint32_t>((product << 32 >> 32) >> (32 - bits));
}

void QrpTable::insert_keyword(std::string_view keyword) {
  if (keyword.empty()) return;
  const std::uint32_t slot = hash_keyword(keyword, log2_size_);
  if (!bits_[slot]) {
    bits_[slot] = true;
    ++set_count_;
  }
}

void QrpTable::insert_keywords_of(std::string_view text) {
  for_each_word(text, [this](std::string_view word) { insert_keyword(word); });
}

bool QrpTable::might_match(std::string_view query) const {
  bool any = false;
  bool all = true;
  for_each_word(query, [&](std::string_view word) {
    any = true;
    if (!bits_[hash_keyword(word, log2_size_)]) all = false;
  });
  return any && all;
}

void QrpTable::merge(const QrpTable& other) {
  if (other.bits_.size() != bits_.size()) {
    throw std::invalid_argument("QrpTable: size mismatch in merge");
  }
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (other.bits_[i] && !bits_[i]) {
      bits_[i] = true;
      ++set_count_;
    }
  }
}

double QrpTable::fill_ratio() const {
  return static_cast<double>(set_count_) / static_cast<double>(bits_.size());
}

std::vector<std::uint8_t> QrpTable::to_patch() const {
  std::vector<std::uint8_t> patch((bits_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) patch[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return patch;
}

QrpTable QrpTable::from_patch(const std::vector<std::uint8_t>& patch) {
  const std::size_t bit_count = patch.size() * 8;
  unsigned log2 = 0;
  while ((std::size_t{1} << log2) < bit_count && log2 <= 24) ++log2;
  if ((std::size_t{1} << log2) != bit_count) {
    throw std::invalid_argument("QrpTable: patch is not a power-of-two size");
  }
  QrpTable table(log2);
  for (std::size_t i = 0; i < bit_count; ++i) {
    if (patch[i / 8] & (1u << (i % 8))) {
      table.bits_[i] = true;
      ++table.set_count_;
    }
  }
  return table;
}

}  // namespace p2pgen::gnutella
