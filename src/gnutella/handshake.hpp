// p2pgen — Gnutella 0.6 connection handshake.
//
// Connections open with a three-step HTTP-like header exchange:
//
//   peer  -> node:  GNUTELLA CONNECT/0.6\r\n<headers>\r\n
//   node  -> peer:  GNUTELLA/0.6 200 OK\r\n<headers>\r\n
//   peer  -> node:  GNUTELLA/0.6 200 OK\r\n\r\n
//
// The paper records the User-Agent header exchanged here to attribute
// query anomalies to specific client implementations (Section 3.3), and a
// connected session *starts* when the handshake completes (Section 3.2).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace p2pgen::gnutella {

/// Case-insensitive header map, normalized to lower-case keys on insert.
class HeaderMap {
 public:
  void set(std::string key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const noexcept { return headers_.size(); }
  const std::map<std::string, std::string>& entries() const noexcept {
    return headers_;
  }

 private:
  std::map<std::string, std::string> headers_;
};

/// A parsed handshake block (request or response).
struct Handshake {
  /// True for "GNUTELLA CONNECT/0.6", false for "GNUTELLA/0.6 <code> ...".
  bool is_connect_request = true;
  int status_code = 200;      // meaningful for responses only
  std::string status_phrase;  // e.g. "OK"
  HeaderMap headers;

  /// Convenience accessors for the headers the paper uses.
  std::string user_agent() const;
  bool is_ultrapeer() const;

  /// Serializes to the wire text (with trailing blank line).
  std::string to_text() const;

  /// Parses a handshake block.  Returns std::nullopt on malformed input.
  static std::optional<Handshake> parse(const std::string& text);

  /// Builds a CONNECT request.
  static Handshake connect_request(std::string user_agent, bool ultrapeer);

  /// Builds a 200-OK response.
  static Handshake ok_response(std::string user_agent, bool ultrapeer);
};

}  // namespace p2pgen::gnutella
