#include "gnutella/codec.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace p2pgen::gnutella {
namespace {

/// Append helpers (little-endian unless noted).
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_cstring(std::vector<std::uint8_t>& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
  out.push_back(0);
}

/// Bounded reader over the payload span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16le() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32le() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint32_t u32be() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::string cstring() {
    const auto start = pos_;
    while (pos_ < data_.size() && data_[pos_] != 0) ++pos_;
    if (pos_ >= data_.size()) throw DecodeError("unterminated string in payload");
    std::string s(reinterpret_cast<const char*>(data_.data() + start), pos_ - start);
    ++pos_;  // skip NUL
    return s;
  }

  Guid guid() {
    need(16);
    Guid g;
    std::memcpy(g.bytes.data(), data_.data() + pos_, 16);
    pos_ += 16;
    return g;
  }

  void expect_consumed() const {
    if (pos_ != data_.size()) throw DecodeError("trailing bytes in payload");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated payload");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> encode_payload(const Message& message) {
  std::vector<std::uint8_t> out;
  switch (message.type()) {
    case MessageType::kPing:
      break;
    case MessageType::kPong: {
      const auto& p = std::get<PongPayload>(message.payload);
      put_u16le(out, p.port);
      put_u32be(out, p.ip);
      put_u32le(out, p.shared_files);
      put_u32le(out, p.shared_kbytes);
      break;
    }
    case MessageType::kQuery: {
      const auto& q = std::get<QueryPayload>(message.payload);
      put_u16le(out, q.min_speed);
      put_cstring(out, q.keywords);
      if (!q.sha1_urn.empty()) put_cstring(out, q.sha1_urn);
      break;
    }
    case MessageType::kQueryHit: {
      const auto& h = std::get<QueryHitPayload>(message.payload);
      if (h.results.size() > 255) throw DecodeError("too many query hit results");
      put_u8(out, static_cast<std::uint8_t>(h.results.size()));
      put_u16le(out, h.port);
      put_u32be(out, h.ip);
      put_u32le(out, h.speed_kbps);
      for (const auto& r : h.results) {
        put_u32le(out, r.file_index);
        put_u32le(out, r.file_size);
        put_cstring(out, r.file_name);
        put_cstring(out, "");  // empty extension block
      }
      out.insert(out.end(), h.servent_guid.bytes.begin(), h.servent_guid.bytes.end());
      break;
    }
    case MessageType::kBye: {
      const auto& b = std::get<ByePayload>(message.payload);
      put_u16le(out, b.code);
      put_cstring(out, b.reason);
      break;
    }
    case MessageType::kRouteTableUpdate: {
      const auto& t = std::get<RouteTablePayload>(message.payload);
      put_u32le(out, static_cast<std::uint32_t>(t.patch.size()));
      out.insert(out.end(), t.patch.begin(), t.patch.end());
      break;
    }
  }
  return out;
}

Payload decode_payload(MessageType type, std::span<const std::uint8_t> data) {
  Reader r(data);
  switch (type) {
    case MessageType::kPing: {
      r.expect_consumed();
      return PingPayload{};
    }
    case MessageType::kPong: {
      PongPayload p;
      p.port = r.u16le();
      p.ip = r.u32be();
      p.shared_files = r.u32le();
      p.shared_kbytes = r.u32le();
      r.expect_consumed();
      return p;
    }
    case MessageType::kQuery: {
      QueryPayload q;
      q.min_speed = r.u16le();
      q.keywords = r.cstring();
      if (r.remaining() > 0) q.sha1_urn = r.cstring();
      r.expect_consumed();
      return q;
    }
    case MessageType::kQueryHit: {
      QueryHitPayload h;
      const std::uint8_t count = r.u8();
      h.port = r.u16le();
      h.ip = r.u32be();
      h.speed_kbps = r.u32le();
      h.results.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) {
        QueryHitResult res;
        res.file_index = r.u32le();
        res.file_size = r.u32le();
        res.file_name = r.cstring();
        (void)r.cstring();  // extension block, ignored
        h.results.push_back(std::move(res));
      }
      h.servent_guid = r.guid();
      r.expect_consumed();
      return h;
    }
    case MessageType::kBye: {
      ByePayload b;
      b.code = r.u16le();
      b.reason = r.cstring();
      r.expect_consumed();
      return b;
    }
    case MessageType::kRouteTableUpdate: {
      RouteTablePayload t;
      const std::uint32_t n = r.u32le();
      t.patch.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) t.patch.push_back(r.u8());
      r.expect_consumed();
      return t;
    }
  }
  throw DecodeError("unknown descriptor type");
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  const auto payload = encode_payload(message);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  out.insert(out.end(), message.guid.bytes.begin(), message.guid.bytes.end());
  out.push_back(static_cast<std::uint8_t>(message.type()));
  out.push_back(message.ttl);
  out.push_back(message.hops);
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<std::pair<Message, std::size_t>> try_decode(
    std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;

  Message msg;
  std::memcpy(msg.guid.bytes.data(), buffer.data(), 16);
  const std::uint8_t type_byte = buffer[16];
  msg.ttl = buffer[17];
  msg.hops = buffer[18];
  std::uint32_t payload_length = 0;
  for (int i = 3; i >= 0; --i) {
    payload_length = (payload_length << 8) | buffer[19 + static_cast<std::size_t>(i)];
  }
  if (payload_length > kMaxPayload) throw DecodeError("payload length exceeds bound");

  switch (type_byte) {
    case 0x00:
    case 0x01:
    case 0x02:
    case 0x30:
    case 0x80:
    case 0x81:
      break;
    default:
      throw DecodeError("unknown descriptor type byte");
  }

  const std::size_t total = kHeaderSize + payload_length;
  if (buffer.size() < total) return std::nullopt;

  msg.payload = decode_payload(static_cast<MessageType>(type_byte),
                               buffer.subspan(kHeaderSize, payload_length));
  return std::make_pair(std::move(msg), total);
}

void MessageAssembler::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Message> MessageAssembler::next() {
  if (poisoned_) throw DecodeError("assembler poisoned by earlier error");
  const std::span<const std::uint8_t> pending(buffer_.data() + consumed_,
                                              buffer_.size() - consumed_);
  std::optional<std::pair<Message, std::size_t>> result;
  try {
    result = try_decode(pending);
  } catch (const DecodeError&) {
    poisoned_ = true;
    throw;
  }
  if (!result) {
    // Compact once the consumed prefix dominates the buffer.
    if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<long>(consumed_));
      consumed_ = 0;
    }
    return std::nullopt;
  }
  consumed_ += result->second;
  consumed_total_ += result->second;
  ++produced_;
  return std::move(result->first);
}

void MessageAssembler::reset() {
  obs::Registry::global().counter("gnutella.assembler_resets").inc();
  buffer_.clear();
  buffer_.shrink_to_fit();
  consumed_ = 0;
  poisoned_ = false;
}

Message decode(std::span<const std::uint8_t> wire) {
  auto result = try_decode(wire);
  if (!result) throw DecodeError("truncated descriptor");
  if (result->second != wire.size()) throw DecodeError("trailing bytes after descriptor");
  return std::move(result->first);
}

}  // namespace p2pgen::gnutella
