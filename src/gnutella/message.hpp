// p2pgen — Gnutella 0.6 message model.
//
// The four descriptor types the paper analyzes (PING, PONG, QUERY,
// QUERYHIT; Section 3.1) plus BYE (session termination, Section 3.2).
// Each descriptor carries the 23-byte header fields: GUID, type, TTL,
// hops, payload length.  Payloads are modeled as typed structs; the wire
// representation lives in codec.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "gnutella/guid.hpp"

namespace p2pgen::gnutella {

/// Gnutella descriptor type bytes (wire values from the 0.6 spec).
enum class MessageType : std::uint8_t {
  kPing = 0x00,
  kPong = 0x01,
  kBye = 0x02,
  kRouteTableUpdate = 0x30,  // QRP patch (leaf -> ultrapeer)
  kQuery = 0x80,
  kQueryHit = 0x81,
};

/// Human-readable type name ("PING", "QUERY", ...).
std::string_view message_type_name(MessageType t) noexcept;

/// PING — connectivity probe; empty payload.
struct PingPayload {
  friend bool operator==(const PingPayload&, const PingPayload&) = default;
};

/// PONG — answer to PING, advertising the responder's address and its
/// shared library size.  Figure 2 of the paper is built from the
/// shared-file counts observed in PONGs.
struct PongPayload {
  std::uint16_t port = 6346;
  std::uint32_t ip = 0;            // IPv4, host byte order
  std::uint32_t shared_files = 0;  // number of files shared
  std::uint32_t shared_kbytes = 0; // total shared size in KB
  friend bool operator==(const PongPayload&, const PongPayload&) = default;
};

/// QUERY — keyword search.  `keywords` is the raw search string; the
/// optional SHA1 extension (urn:sha1:...) marks re-queries for a known
/// file, which filter rule 1 removes from the user workload.
struct QueryPayload {
  std::uint16_t min_speed = 0;
  std::string keywords;
  std::string sha1_urn;  // empty when the extension is absent

  bool has_sha1() const noexcept { return !sha1_urn.empty(); }
  friend bool operator==(const QueryPayload&, const QueryPayload&) = default;
};

/// A single result record inside a QUERYHIT.
struct QueryHitResult {
  std::uint32_t file_index = 0;
  std::uint32_t file_size = 0;
  std::string file_name;
  friend bool operator==(const QueryHitResult&, const QueryHitResult&) = default;
};

/// QUERYHIT — response carrying matching files; routed back along the
/// reverse overlay path of the originating QUERY's GUID.
struct QueryHitPayload {
  std::uint16_t port = 6346;
  std::uint32_t ip = 0;
  std::uint32_t speed_kbps = 0;
  std::vector<QueryHitResult> results;
  Guid servent_guid;
  friend bool operator==(const QueryHitPayload&, const QueryHitPayload&) = default;
};

/// BYE — optional graceful session termination (most real clients simply
/// go silent, which is why the measurement node needs the idle-probe
/// heuristic of Section 3.2).
struct ByePayload {
  std::uint16_t code = 200;
  std::string reason;
  friend bool operator==(const ByePayload&, const ByePayload&) = default;
};

/// ROUTE_TABLE_UPDATE — a QRP table patch.  Leaves summarize their shared
/// keywords for their ultrapeers, which then forward queries "only to the
/// leaf nodes that have a high probability of responding" (Section 3.1).
struct RouteTablePayload {
  std::vector<std::uint8_t> patch;  // packed QRP bits (qrp.hpp)
  friend bool operator==(const RouteTablePayload&,
                         const RouteTablePayload&) = default;
};

using Payload = std::variant<PingPayload, PongPayload, QueryPayload,
                             QueryHitPayload, ByePayload, RouteTablePayload>;

/// A full Gnutella descriptor: header + typed payload.
struct Message {
  Guid guid;
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
  Payload payload;

  MessageType type() const noexcept;

  /// True when the TTL allows another forwarding step.
  bool forwardable() const noexcept { return ttl > 0; }

  /// Returns a copy prepared for forwarding: TTL decremented, hops
  /// incremented (paper Section 3.1).  Requires forwardable().
  Message forwarded() const;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Factory helpers.
Message make_ping(stats::Rng& rng, std::uint8_t ttl = 7);
Message make_pong(const Guid& ping_guid, std::uint32_t ip, std::uint32_t shared_files,
                  std::uint32_t shared_kbytes, std::uint8_t ttl = 7);
Message make_query(stats::Rng& rng, std::string keywords, std::string sha1_urn = {},
                   std::uint8_t ttl = 7);
Message make_query_hit(const Guid& query_guid, std::uint32_t ip,
                       std::vector<QueryHitResult> results, const Guid& servent,
                       std::uint8_t ttl = 7);
Message make_bye(stats::Rng& rng, std::uint16_t code, std::string reason);
Message make_route_table_update(stats::Rng& rng, std::vector<std::uint8_t> patch);

/// Canonicalizes a query string into its keyword set: lower-cased,
/// whitespace-split, de-duplicated, sorted, re-joined with single spaces.
/// Two queries are "identical" in the paper's sense iff their canonical
/// keyword sets are equal (Section 3.2).
std::string canonical_keywords(std::string_view raw_query);

}  // namespace p2pgen::gnutella
