#include "gnutella/message.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

namespace p2pgen::gnutella {

std::string_view message_type_name(MessageType t) noexcept {
  switch (t) {
    case MessageType::kPing: return "PING";
    case MessageType::kPong: return "PONG";
    case MessageType::kBye: return "BYE";
    case MessageType::kRouteTableUpdate: return "ROUTE_TABLE_UPDATE";
    case MessageType::kQuery: return "QUERY";
    case MessageType::kQueryHit: return "QUERYHIT";
  }
  return "UNKNOWN";
}

MessageType Message::type() const noexcept {
  switch (payload.index()) {
    case 0: return MessageType::kPing;
    case 1: return MessageType::kPong;
    case 2: return MessageType::kQuery;
    case 3: return MessageType::kQueryHit;
    case 4: return MessageType::kBye;
    default: return MessageType::kRouteTableUpdate;
  }
}

Message Message::forwarded() const {
  if (!forwardable()) {
    throw std::logic_error("Message::forwarded: TTL exhausted");
  }
  Message copy = *this;
  --copy.ttl;
  ++copy.hops;
  return copy;
}

Message make_ping(stats::Rng& rng, std::uint8_t ttl) {
  return Message{Guid::generate(rng), ttl, 0, PingPayload{}};
}

Message make_pong(const Guid& ping_guid, std::uint32_t ip,
                  std::uint32_t shared_files, std::uint32_t shared_kbytes,
                  std::uint8_t ttl) {
  // A PONG reuses the GUID of the PING it answers so it can be routed back.
  return Message{ping_guid, ttl, 0,
                 PongPayload{6346, ip, shared_files, shared_kbytes}};
}

Message make_query(stats::Rng& rng, std::string keywords, std::string sha1_urn,
                   std::uint8_t ttl) {
  return Message{Guid::generate(rng), ttl, 0,
                 QueryPayload{0, std::move(keywords), std::move(sha1_urn)}};
}

Message make_query_hit(const Guid& query_guid, std::uint32_t ip,
                       std::vector<QueryHitResult> results, const Guid& servent,
                       std::uint8_t ttl) {
  QueryHitPayload payload;
  payload.ip = ip;
  payload.results = std::move(results);
  payload.servent_guid = servent;
  return Message{query_guid, ttl, 0, std::move(payload)};
}

Message make_bye(stats::Rng& rng, std::uint16_t code, std::string reason) {
  return Message{Guid::generate(rng), 1, 0, ByePayload{code, std::move(reason)}};
}

Message make_route_table_update(stats::Rng& rng, std::vector<std::uint8_t> patch) {
  // QRP patches travel exactly one hop (leaf to its ultrapeer).
  return Message{Guid::generate(rng), 1, 0,
                 RouteTablePayload{std::move(patch)}};
}

std::string canonical_keywords(std::string_view raw_query) {
  std::vector<std::string> words;
  std::string current;
  for (char c : raw_query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  std::string joined;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i > 0) joined.push_back(' ');
    joined += words[i];
  }
  return joined;
}

}  // namespace p2pgen::gnutella
