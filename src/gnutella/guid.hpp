// p2pgen — Gnutella globally unique identifiers.
//
// Every Gnutella descriptor carries a 16-byte GUID.  GUIDs identify
// descriptors for duplicate suppression and reverse-path routing of
// QUERYHIT messages (paper Section 3.1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "stats/rng.hpp"

namespace p2pgen::gnutella {

/// 16-byte descriptor identifier.
struct Guid {
  std::array<std::uint8_t, 16> bytes{};

  /// Generates a fresh GUID from the given RNG.  Follows the modern
  /// servent convention: byte 8 = 0xff (new-style marker), byte 15 = 0.
  static Guid generate(stats::Rng& rng);

  /// All-zero GUID (invalid / sentinel).
  static constexpr Guid zero() noexcept { return Guid{}; }

  bool is_zero() const noexcept;

  /// Lowercase hex string, e.g. "00ff3a...".
  std::string to_string() const;

  friend bool operator==(const Guid&, const Guid&) = default;
  auto operator<=>(const Guid&) const = default;
};

/// FNV-1a hash over the GUID bytes, for unordered containers.
struct GuidHash {
  std::size_t operator()(const Guid& g) const noexcept;
};

}  // namespace p2pgen::gnutella
