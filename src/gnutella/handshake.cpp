#include "gnutella/handshake.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace p2pgen::gnutella {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

void HeaderMap::set(std::string key, std::string value) {
  headers_[to_lower(std::move(key))] = std::move(value);
}

std::optional<std::string> HeaderMap::get(const std::string& key) const {
  const auto it = headers_.find(to_lower(key));
  if (it == headers_.end()) return std::nullopt;
  return it->second;
}

bool HeaderMap::contains(const std::string& key) const {
  return headers_.count(to_lower(key)) > 0;
}

std::string Handshake::user_agent() const {
  return headers.get("user-agent").value_or("");
}

bool Handshake::is_ultrapeer() const {
  const auto v = headers.get("x-ultrapeer");
  if (!v) return false;
  return to_lower(trim(*v)) == "true";
}

std::string Handshake::to_text() const {
  std::ostringstream os;
  if (is_connect_request) {
    os << "GNUTELLA CONNECT/0.6\r\n";
  } else {
    os << "GNUTELLA/0.6 " << status_code << ' ' << status_phrase << "\r\n";
  }
  for (const auto& [key, value] : headers.entries()) {
    os << key << ": " << value << "\r\n";
  }
  os << "\r\n";
  return os.str();
}

std::optional<Handshake> Handshake::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  Handshake hs;
  if (line == "GNUTELLA CONNECT/0.6") {
    hs.is_connect_request = true;
  } else if (line.rfind("GNUTELLA/0.6 ", 0) == 0) {
    hs.is_connect_request = false;
    std::istringstream status(line.substr(13));
    if (!(status >> hs.status_code)) return std::nullopt;
    std::getline(status, hs.status_phrase);
    hs.status_phrase = trim(hs.status_phrase);
  } else {
    return std::nullopt;
  }

  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;  // end of headers
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    hs.headers.set(trim(line.substr(0, colon)), trim(line.substr(colon + 1)));
  }
  return hs;
}

Handshake Handshake::connect_request(std::string user_agent, bool ultrapeer) {
  Handshake hs;
  hs.is_connect_request = true;
  hs.headers.set("User-Agent", std::move(user_agent));
  hs.headers.set("X-Ultrapeer", ultrapeer ? "True" : "False");
  hs.headers.set("X-Query-Routing", "0.1");
  return hs;
}

Handshake Handshake::ok_response(std::string user_agent, bool ultrapeer) {
  Handshake hs;
  hs.is_connect_request = false;
  hs.status_code = 200;
  hs.status_phrase = "OK";
  hs.headers.set("User-Agent", std::move(user_agent));
  hs.headers.set("X-Ultrapeer", ultrapeer ? "True" : "False");
  return hs;
}

}  // namespace p2pgen::gnutella
