#include "gnutella/guid.hpp"

#include <cstring>

namespace p2pgen::gnutella {

Guid Guid::generate(stats::Rng& rng) {
  Guid g;
  for (int chunk = 0; chunk < 2; ++chunk) {
    const std::uint64_t word = rng.next_u64();
    std::memcpy(g.bytes.data() + chunk * 8, &word, 8);
  }
  g.bytes[8] = 0xff;  // "new GUID" marker per the Gnutella 0.6 convention
  g.bytes[15] = 0x00;
  return g;
}

bool Guid::is_zero() const noexcept {
  for (auto b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

std::string Guid::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (auto b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::size_t GuidHash::operator()(const Guid& g) const noexcept {
  std::size_t h = 1469598103934665603ULL;
  for (auto b : g.bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace p2pgen::gnutella
