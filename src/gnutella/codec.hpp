// p2pgen — Gnutella 0.6 binary wire codec.
//
// Descriptor framing per the Gnutella 0.6 specification: a 23-byte header
// (GUID 16 | type 1 | TTL 1 | hops 1 | payload length 4 little-endian)
// followed by the type-specific payload.  Multi-byte payload integers are
// little-endian except IP addresses, which the spec transmits in network
// byte order.
//
// The codec is strict: decode() throws DecodeError on truncated input,
// unknown type bytes, missing terminators, or length mismatches; the
// fuzz-style round-trip tests rely on this.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "gnutella/message.hpp"

namespace p2pgen::gnutella {

/// Thrown by decode() on malformed wire data.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Size of the fixed descriptor header in bytes.
inline constexpr std::size_t kHeaderSize = 23;

/// Maximum payload length the decoder accepts (sanity bound; the real
/// network drops oversized descriptors too).
inline constexpr std::uint32_t kMaxPayload = 64 * 1024;

/// Serializes a message to its wire representation.
std::vector<std::uint8_t> encode(const Message& message);

/// Decodes exactly one message occupying the whole span.
/// Throws DecodeError on any malformation.
Message decode(std::span<const std::uint8_t> wire);

/// Streaming decode: if `buffer` starts with one complete descriptor,
/// returns the message and its encoded size; returns std::nullopt when
/// more bytes are needed.  Throws DecodeError on malformed framing.
std::optional<std::pair<Message, std::size_t>> try_decode(
    std::span<const std::uint8_t> buffer);

/// Reassembles descriptors from a TCP byte stream delivered in arbitrary
/// chunks.  feed() buffers the bytes; next() pops complete descriptors.
/// A DecodeError from malformed framing poisons the assembler (the real
/// client would drop the connection); further calls rethrow until
/// reset() clears the poisoned state.
class MessageAssembler {
 public:
  /// Appends raw bytes from the stream.
  void feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete descriptor, or std::nullopt if more bytes are
  /// needed.  Throws DecodeError on malformed framing (sticky until
  /// reset()).
  std::optional<Message> next();

  /// Discards all pending bytes and clears the poisoned flag so a
  /// connection-scoped assembler can be reused after a DecodeError.  The
  /// lifetime counters (produced(), consumed_total()) are preserved: they
  /// describe the stream's history, which a reset does not rewrite.
  void reset();

  /// Bytes buffered but not yet consumed by complete descriptors.
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

  /// Total descriptors produced so far.
  std::uint64_t produced() const noexcept { return produced_; }

  /// Cumulative bytes consumed by successfully decoded descriptors over
  /// the assembler's lifetime.  When next() throws, this is exactly how
  /// far into the stream the corruption hit — the measurement trace
  /// records it as the session's clean-bytes high-water mark.
  std::uint64_t consumed_total() const noexcept { return consumed_total_; }

  bool poisoned() const noexcept { return poisoned_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::uint64_t consumed_total_ = 0;
  std::uint64_t produced_ = 0;
  bool poisoned_ = false;
};

}  // namespace p2pgen::gnutella
