#include "gnutella/routing.hpp"

#include <stdexcept>

namespace p2pgen::gnutella {

RoutingTable::RoutingTable(double expiry_seconds) : expiry_(expiry_seconds) {
  if (!(expiry_seconds > 0.0)) {
    throw std::invalid_argument("RoutingTable: expiry must be > 0");
  }
}

void RoutingTable::purge(double now) {
  while (!order_.empty() && order_.front().first + expiry_ <= now) {
    const auto& [seen_at, guid] = order_.front();
    const auto it = entries_.find(guid);
    // Only erase if the stored entry is the one this order slot refers to
    // (the GUID may have been refreshed by a later note_seen).
    if (it != entries_.end() && it->second.seen_at == seen_at) {
      entries_.erase(it);
    }
    order_.pop_front();
  }
}

bool RoutingTable::note_seen(const Guid& guid, PeerLink from, double now) {
  purge(now);
  const auto [it, inserted] = entries_.try_emplace(guid, Entry{from, now});
  if (!inserted) return false;
  order_.emplace_back(now, guid);
  return true;
}

std::optional<PeerLink> RoutingTable::reverse_route(const Guid& guid, double now) {
  purge(now);
  const auto it = entries_.find(guid);
  if (it == entries_.end()) return std::nullopt;
  return it->second.from;
}

std::size_t RoutingTable::size(double now) {
  purge(now);
  return entries_.size();
}

}  // namespace p2pgen::gnutella
