// p2pgen — Query Routing Protocol (QRP) tables.
//
// Paper Section 3.1: "A QUERY message is forwarded to all ultrapeer
// nodes, but is only forwarded to the leaf nodes that have a high
// probability of responding."  The mechanism behind that sentence is
// QRP: each leaf summarizes the keywords of its shared files in a
// hash-bit table and sends it to its ultrapeers (the X-Query-Routing
// handshake header negotiates support); an ultrapeer forwards a query to
// a leaf only if every keyword of the query hits the leaf's table.
//
// The table is a Bloom-filter-like bit array addressed by the classic QRP
// hash (Gnutella QRP spec v0.1: multiplicative hashing of lower-cased
// keywords).  False positives cause spurious forwards (harmless); false
// negatives cannot occur for inserted keywords.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace p2pgen::gnutella {

/// A QRP keyword-hash table.
class QrpTable {
 public:
  /// `log2_size` — table holds 2^log2_size bits (spec default: 16).
  explicit QrpTable(unsigned log2_size = 16);

  /// The QRP keyword hash: multiplicative hash of the lower-cased word,
  /// reduced to `bits` bits.  Matches the classic QRP v0.1 construction.
  static std::uint32_t hash_keyword(std::string_view keyword, unsigned bits);

  /// Inserts one keyword.
  void insert_keyword(std::string_view keyword);

  /// Inserts every whitespace-separated keyword of a file name / title.
  void insert_keywords_of(std::string_view text);

  /// True iff EVERY keyword of `query` hits the table (QRP forwards only
  /// on full conjunction).  An empty keyword set never matches.
  bool might_match(std::string_view query) const;

  /// Bitwise OR of another table (ultrapeers aggregate leaf tables).
  /// Requires equal sizes.
  void merge(const QrpTable& other);

  /// Fraction of bits set (the spec caps useful fill around ~5 %).
  double fill_ratio() const;

  std::size_t bit_count() const noexcept { return bits_.size(); }
  unsigned log2_size() const noexcept { return log2_size_; }

  /// Serializes to the patch payload (one bit per entry, packed); the
  /// real protocol compresses and diffs, which the trace analysis never
  /// observes, so the uncompressed form suffices here.
  std::vector<std::uint8_t> to_patch() const;

  /// Reconstructs from a patch.  Throws std::invalid_argument on a size
  /// that is not a power-of-two number of bits.
  static QrpTable from_patch(const std::vector<std::uint8_t>& patch);

 private:
  unsigned log2_size_;
  std::vector<bool> bits_;
  std::size_t set_count_ = 0;
};

}  // namespace p2pgen::gnutella
