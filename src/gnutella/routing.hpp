// p2pgen — GUID routing table.
//
// Per the Gnutella protocol (paper Section 3.1): forwarding a QUERY more
// than once is prevented by remembering its GUID together with the
// directly-connected peer it was first received from; QUERYHITs are routed
// back along that reverse path.  Entries expire after a configurable
// period (typically 10 minutes).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "gnutella/guid.hpp"

namespace p2pgen::gnutella {

/// Identifier of a directly-connected peer (the sim layer's connection id).
using PeerLink = std::uint64_t;

/// GUID -> origin-link table with time-based expiry.
class RoutingTable {
 public:
  /// `expiry_seconds` — how long an entry stays routable (spec: ~600 s).
  explicit RoutingTable(double expiry_seconds = 600.0);

  /// Records that `guid` was first received over `from`.  Returns true if
  /// this is the first sighting (the message should be processed /
  /// forwarded), false if the GUID is a duplicate (drop it).
  /// `now` is the current time in seconds; it must be non-decreasing
  /// across calls.
  bool note_seen(const Guid& guid, PeerLink from, double now);

  /// Reverse-path lookup for a response GUID: the link the original
  /// request arrived on, or nullopt if unknown/expired.
  std::optional<PeerLink> reverse_route(const Guid& guid, double now);

  /// Number of live (non-expired) entries; expiry is applied lazily, so
  /// this first purges.
  std::size_t size(double now);

  double expiry_seconds() const noexcept { return expiry_; }

 private:
  struct Entry {
    PeerLink from = 0;
    double seen_at = 0.0;
  };

  void purge(double now);

  double expiry_;
  std::unordered_map<Guid, Entry, GuidHash> entries_;
  std::deque<std::pair<double, Guid>> order_;  // insertion order for purge
};

}  // namespace p2pgen::gnutella
