// p2pgen — fitting the workload model from a measured trace.
//
// This closes the paper's loop: Sections 4.1–4.6 measure the conditional
// distributions; the Appendix fits analytic models to them; Figure 12
// generates synthetic workloads from those fits.  fit_workload_model()
// performs the Appendix step on OUR measured dataset, producing a
// core::WorkloadModel whose parameters can be compared against the
// paper's published tables (bench_tableA*) and fed straight back into the
// generator.
#pragma once

#include "analysis/measures.hpp"
#include "analysis/popularity_analysis.hpp"
#include "core/model.hpp"
#include "stats/fit.hpp"

namespace p2pgen::analysis {

/// Fitted parameters for every Appendix table, kept in their raw form so
/// the benches can print paper-vs-measured rows.
struct AppendixFits {
  /// Table A.1 — passive session duration, [region][period].
  std::array<std::array<stats::BimodalLogNormalFit, core::kDayPeriodCount>,
             kRegions>
      passive{};

  /// Table A.2 — #queries per active session, [region].
  std::array<stats::LogNormalFit, kRegions> queries{};

  /// Table A.3 — time until first query, [region][period][class].
  std::array<std::array<std::array<stats::BimodalWeibullLogNormalFit,
                                   core::kFirstQueryClassCount>,
                        core::kDayPeriodCount>,
             kRegions>
      first_query{};

  /// Table A.4 — interarrival, [region][period].
  std::array<std::array<stats::BimodalLogNormalParetoFit,
                        core::kDayPeriodCount>,
             kRegions>
      interarrival{};

  /// Table A.5 — time after last query, [region][period][class].
  std::array<std::array<std::array<stats::LogNormalFit,
                                   core::kLastQueryClassCount>,
                        core::kDayPeriodCount>,
             kRegions>
      after_last{};
};

/// Split points used by the Appendix models (seconds).
struct FitSplits {
  double passive_split = 120.0;     // Table A.1: body <= 2 minutes
  double passive_body_lo = 64.0;    // rule 3 floor
  double first_peak_split = 45.0;   // Table A.3 peak rows
  double first_nonpeak_split = 120.0;
  double interarrival_split = 103.0;  // Table A.4: Pareto beta
};

/// Fits every Appendix table from the measured samples.  Conditions with
/// fewer than `min_samples` observations fall back to the corresponding
/// paper_default() slot (recorded as sigma = 0 sentinel in the fit).
AppendixFits fit_appendix_tables(const SessionMeasures& measures,
                                 const FitSplits& splits = {},
                                 std::size_t min_samples = 50);

/// Builds a complete generator-ready WorkloadModel from a measured
/// dataset: Appendix fits + region mix (Figure 1) + passive fractions
/// (Figure 4) + popularity model (Table 3 / Figures 10–11).  Conditions
/// with insufficient data inherit the fallback model's entries
/// (default: core::WorkloadModel::paper_default()).
core::WorkloadModel fit_workload_model(const TraceDataset& dataset,
                                       const core::WorkloadModel& fallback =
                                           core::WorkloadModel::paper_default());

/// The same model assembly from already-computed measures — the form the
/// streaming pass uses, since it produces geography/passive/measures/
/// popularity tables incrementally instead of from a TraceDataset.
/// fit_workload_model() is exactly this on the materialized measures.
core::WorkloadModel fit_workload_model_from_parts(
    const GeographyByHour& geography, const PassiveFraction& passive,
    const SessionMeasures& measures, const DailyQueryTables& tables,
    const core::WorkloadModel& fallback =
        core::WorkloadModel::paper_default());

}  // namespace p2pgen::analysis
