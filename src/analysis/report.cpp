#include "analysis/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "analysis/measures.hpp"
#include "analysis/popularity_analysis.hpp"
#include "stats/ecdf.hpp"

namespace p2pgen::analysis {
namespace {

std::ofstream open_csv(FigureExport& inventory, const std::string& name) {
  const std::string path = inventory.directory + "/" + name;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("report: cannot open " + path);
  inventory.files.push_back(name);
  return out;
}

void write_ccdf_rows(std::ofstream& out, const std::string& label,
                     const std::vector<double>& sample, double lo_floor) {
  if (sample.size() < 2) return;
  const stats::Ecdf ecdf(sample);
  for (const auto& point : ecdf.ccdf_log_grid(64, lo_floor)) {
    out << label << ',' << point.x << ',' << point.y << '\n';
  }
}

constexpr const char* kGnuplotScript = R"(# p2pgen — renders the paper's figures from the exported CSVs.
# usage: gnuplot plots.gp     (produces fig*.png in this directory)
set datafile separator ','
set terminal pngcairo size 900,600
set key outside

set output 'fig1_geography.png'
set title 'Figure 1: geographic distribution (all peers vs one-hop)'
set xlabel 'hour of day'; set ylabel 'fraction of peers'
set yrange [0:1]; set xrange [0:23]
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$2==r" fig1_geography.csv' using 1:3 with lines title 'all peers r'.r, \
  for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$2==r" fig1_geography.csv' using 1:4 with points title '1-hop r'.r

set output 'fig5_passive_duration.png'
set title 'Figure 5(a): passive session duration CCDF'
set xlabel 'duration (min)'; set ylabel 'P[X > x]'
set logscale xy; set yrange [0.01:1]; set xrange [1:*]
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$1==r" fig5_passive_duration.csv' using 2:3 with lines title 'region '.r

set output 'fig6_queries.png'
set title 'Figure 6(a): queries per active session CCDF'
set xlabel '#queries'; set ylabel 'P[X > x]'
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$1==r" fig6_queries.csv' using 2:3 with lines title 'region '.r

set output 'fig7_first_query.png'
set title 'Figure 7(a): time until first query CCDF'
set xlabel 'time (s)'; set ylabel 'P[X > x]'
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$1==r" fig7_first_query.csv' using 2:3 with lines title 'region '.r

set output 'fig8_interarrival.png'
set title 'Figure 8(a): query interarrival CCDF'
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$1==r" fig8_interarrival.csv' using 2:3 with lines title 'region '.r

set output 'fig9_after_last.png'
set title 'Figure 9(a): time after last query CCDF'
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$1==r" fig9_after_last.csv' using 2:3 with lines title 'region '.r

set output 'fig11_popularity.png'
set title 'Figure 11: per-day query popularity'
set xlabel 'rank'; set ylabel 'frequency'
plot for [c in "na_only eu_only intersection"] \
  '< awk -F, -v c='.c.' "$1==c" fig11_popularity.csv' using 2:3 with points title c

unset logscale
set output 'fig4_passive.png'
set title 'Figure 4: fraction of passive peers'
set xlabel 'hour'; set ylabel 'passive fraction'
set yrange [0:1]; set xrange [0:23]
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$2==r" fig4_passive.csv' using 1:4 with lines title 'region '.r

set output 'fig3_load.png'
set title 'Figure 3: query load per 30-minute bin'
set xlabel 'hour'; set ylabel '#queries'; set autoscale y
plot for [r in "0 1 2"] \
  '< awk -F, -v r='.r.' "$2==r" fig3_load.csv' using 1:4 with lines title 'avg r'.r
)";

}  // namespace

FigureExport export_figure_data(const TraceDataset& dataset,
                                const std::string& directory) {
  FigureExport inventory;
  inventory.directory = directory;

  // Figure 1.
  {
    auto out = open_csv(inventory, "fig1_geography.csv");
    out << "hour,region,all_peers,one_hop\n";
    const auto geo = geographic_distribution(dataset);
    for (std::size_t h = 0; h < 24; ++h) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        out << h << ',' << r << ',' << geo.allpeers[r][h] << ','
            << geo.onehop[r][h] << '\n';
      }
    }
  }
  // Figure 2.
  {
    auto out = open_csv(inventory, "fig2_shared_files.csv");
    out << "shared_files,all_peers,one_hop\n";
    const auto dist = shared_files_distribution(dataset);
    for (int k = 0; k <= 100; ++k) {
      out << k << ',' << dist.allpeers[static_cast<std::size_t>(k)] << ','
          << dist.onehop[static_cast<std::size_t>(k)] << '\n';
    }
  }
  // Figure 3.
  {
    auto out = open_csv(inventory, "fig3_load.csv");
    out << "bin_start_hour,region,min,mean,max\n";
    const auto load = query_load(dataset);
    for (std::size_t r = 0; r < kRegions; ++r) {
      for (std::size_t b = 0; b < load.bins[r].size(); ++b) {
        out << (static_cast<double>(b) * 0.5) << ',' << r << ','
            << load.bins[r][b].min << ',' << load.bins[r][b].mean << ','
            << load.bins[r][b].max << '\n';
      }
    }
  }
  // Figure 4.
  {
    auto out = open_csv(inventory, "fig4_passive.csv");
    out << "hour,region,min,mean,max\n";
    const auto pf = passive_fraction(dataset);
    for (std::size_t h = 0; h < 24; ++h) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        const auto& bin = pf.bins[r][h];
        out << h << ',' << r << ',' << bin.min << ',' << bin.mean << ','
            << bin.max << '\n';
      }
    }
  }
  // Figures 5-9 (CCDF families by region).
  {
    const auto m = session_measures(dataset);
    {
      auto out = open_csv(inventory, "fig5_passive_duration.csv");
      out << "region,x_minutes,ccdf\n";
      for (std::size_t r = 0; r < 3; ++r) {
        std::vector<double> minutes;
        minutes.reserve(m.passive_duration_by_region[r].size());
        for (double s : m.passive_duration_by_region[r]) {
          minutes.push_back(s / 60.0);
        }
        write_ccdf_rows(out, std::to_string(r), minutes, 1.0);
      }
    }
    {
      auto out = open_csv(inventory, "fig6_queries.csv");
      out << "region,x,ccdf\n";
      for (std::size_t r = 0; r < 3; ++r) {
        write_ccdf_rows(out, std::to_string(r), m.queries_by_region[r], 1.0);
      }
    }
    {
      auto out = open_csv(inventory, "fig7_first_query.csv");
      out << "region,x_seconds,ccdf\n";
      for (std::size_t r = 0; r < 3; ++r) {
        write_ccdf_rows(out, std::to_string(r), m.first_query_by_region[r],
                        1.0);
      }
    }
    {
      auto out = open_csv(inventory, "fig8_interarrival.csv");
      out << "region,x_seconds,ccdf\n";
      for (std::size_t r = 0; r < 3; ++r) {
        write_ccdf_rows(out, std::to_string(r), m.interarrival_by_region[r],
                        1.0);
      }
    }
    {
      auto out = open_csv(inventory, "fig9_after_last.csv");
      out << "region,x_seconds,ccdf\n";
      for (std::size_t r = 0; r < 3; ++r) {
        write_ccdf_rows(out, std::to_string(r), m.after_last_by_region[r],
                        1.0);
      }
    }
  }
  // Figure 11.
  {
    auto out = open_csv(inventory, "fig11_popularity.csv");
    out << "class,rank,frequency\n";
    const DailyQueryTables tables(dataset);
    const auto pop = popularity_distributions(tables);
    auto dump = [&out](const char* label, const ClassPopularity& cp) {
      for (std::size_t rank = 1; rank <= cp.pmf.size(); ++rank) {
        out << label << ',' << rank << ',' << cp.pmf[rank - 1] << '\n';
      }
    };
    dump("na_only", pop.na_only);
    dump("eu_only", pop.eu_only);
    dump("intersection", pop.intersection);
  }
  // gnuplot script.
  {
    auto out = open_csv(inventory, "plots.gp");
    out << kGnuplotScript;
  }
  return inventory;
}

void RobustnessReport::add_trace(const trace::Trace& trace) {
  for (const auto& event : trace.events()) {
    const auto* end = std::get_if<trace::SessionEnd>(&event);
    if (end == nullptr) continue;
    switch (end->reason) {
      case trace::EndReason::kBye: ++bye_ends; break;
      case trace::EndReason::kTeardown: ++teardown_ends; break;
      case trace::EndReason::kIdleProbe: ++probe_ends; break;
      case trace::EndReason::kError: ++error_ends; break;
    }
  }
}

bool RobustnessReport::any_faults() const noexcept {
  return injected.messages_lost > 0 || injected.messages_corrupted > 0 ||
         injected.messages_duplicated > 0 || injected.messages_delayed > 0 ||
         injected.node_crashes > 0 || injected.half_open_links > 0 ||
         injected.sends_into_dead_link > 0 || decode_errors > 0 ||
         forward_retries > 0 || error_ends > 0;
}

void print_robustness_report(std::ostream& out,
                             const RobustnessReport& report) {
  auto row = [&out](const char* label, std::uint64_t value) {
    out << "  " << label;
    for (std::size_t i = std::char_traits<char>::length(label); i < 34; ++i) {
      out << ' ';
    }
    out << value << "\n";
  };
  out << "robustness report (fault layer + measurement node):\n";
  row("injected message loss:", report.injected.messages_lost);
  row("injected corruptions:", report.injected.messages_corrupted);
  row("injected duplicates:", report.injected.messages_duplicated);
  row("injected delays (jitter):", report.injected.messages_delayed);
  row("injected peer crashes:", report.injected.node_crashes);
  row("half-open link directions:", report.injected.half_open_links);
  row("sends into dead links:", report.injected.sends_into_dead_link);
  row("transport delivered:", report.transport_delivered);
  row("transport dropped:", report.transport_dropped);
  row("decode errors caught:", report.decode_errors);
  row("clean bytes before error:", report.clean_bytes_before_error);
  row("forward retries:", report.forward_retries);
  row("forward retries exhausted:", report.forward_retries_exhausted);
  row("shed connections (admission):", report.shed_connections);
  row("shed queries (overload):", report.shed_queries);
  row("regional outage crashes:", report.outage_crashes);
  row("session ends: BYE:", report.bye_ends);
  row("session ends: teardown:", report.teardown_ends);
  row("session ends: idle probe:", report.probe_ends);
  row("session ends: decode error:", report.error_ends);
}

PipelineReport PipelineReport::capture(const RobustnessReport& robustness,
                                       const FilterReport& filters) {
  PipelineReport report;
  report.robustness = robustness;
  report.filters = filters;
  report.metrics = obs::Registry::global().snapshot();
  return report;
}

void PipelineReport::write_json(std::ostream& out) const {
  const auto field = [&out](const char* name, std::uint64_t value,
                            bool last = false) {
    out << "    \"" << name << "\": " << value << (last ? "\n" : ",\n");
  };
  out << "{\n  \"robustness\": {\n";
  field("injected_messages_lost", robustness.injected.messages_lost);
  field("injected_messages_corrupted", robustness.injected.messages_corrupted);
  field("injected_messages_duplicated",
        robustness.injected.messages_duplicated);
  field("injected_messages_delayed", robustness.injected.messages_delayed);
  field("injected_node_crashes", robustness.injected.node_crashes);
  field("injected_half_open_links", robustness.injected.half_open_links);
  field("sends_into_dead_link", robustness.injected.sends_into_dead_link);
  field("transport_delivered", robustness.transport_delivered);
  field("transport_dropped", robustness.transport_dropped);
  field("decode_errors", robustness.decode_errors);
  field("clean_bytes_before_error", robustness.clean_bytes_before_error);
  field("forward_retries", robustness.forward_retries);
  field("forward_retries_exhausted", robustness.forward_retries_exhausted);
  field("shed_connections", robustness.shed_connections);
  field("shed_queries", robustness.shed_queries);
  field("outage_crashes", robustness.outage_crashes);
  field("bye_ends", robustness.bye_ends);
  field("teardown_ends", robustness.teardown_ends);
  field("probe_ends", robustness.probe_ends);
  field("error_ends", robustness.error_ends, true);
  out << "  },\n  \"filters\": {\n";
  field("initial_queries", filters.initial_queries);
  field("initial_sessions", filters.initial_sessions);
  field("rule1_removed", filters.rule1_removed);
  field("rule2_removed", filters.rule2_removed);
  field("rule3_removed_queries", filters.rule3_removed_queries);
  field("rule3_removed_sessions", filters.rule3_removed_sessions);
  field("final_queries", filters.final_queries);
  field("final_sessions", filters.final_sessions);
  field("rule4_excluded", filters.rule4_excluded);
  field("rule5_excluded", filters.rule5_excluded);
  field("interarrival_queries", filters.interarrival_queries, true);
  char num[64];
  // Salvage loss accounting (DESIGN.md §14).  Always present so report
  // diffs across strict/salvage runs compare field-by-field; all-zero
  // with an empty ranges array when nothing was damaged.  Open windows
  // (+inf after a gap that ran to the end of a spool) are clamped to the
  // trace end for display — the report stays plain finite JSON.
  out << "  },\n  \"gaps\": {\n";
  field("censored_sessions", salvage.censored_sessions);
  field("censored_queries", salvage.censored_queries);
  field("frames_lost", salvage.frames_lost);
  field("bytes_quarantined", salvage.bytes_quarantined);
  out << "    \"ranges\": [";
  for (std::size_t i = 0; i < salvage.ranges.size(); ++i) {
    const trace::SalvageRange& range = salvage.ranges[i];
    double gap_end = range.time_after;
    if (!std::isfinite(gap_end)) gap_end = salvage_trace_end;
    double gap_begin = range.time_before;
    if (!std::isfinite(gap_begin)) gap_begin = 0.0;
    out << (i == 0 ? "\n      {" : ",\n      {") << "\"shard\": "
        << range.shard << ", \"segment\": \"" << range.file
        << "\", \"byte_begin\": " << range.byte_begin
        << ", \"byte_end\": " << range.byte_end
        << ", \"frames_lost\": " << range.frames_lost;
    std::snprintf(num, sizeof(num), "%.9f", gap_begin);
    out << ", \"gap_begin\": " << num;
    std::snprintf(num, sizeof(num), "%.9f", gap_end);
    out << ", \"gap_end\": " << num << "}";
  }
  out << (salvage.ranges.empty() ? "]\n" : "\n    ]\n");
  out << "  },\n  \"timeline\": {\n";
  std::snprintf(num, sizeof(num), "%.9f", timeline_tick_seconds);
  out << "    \"tick_seconds\": " << num << ",\n    \"series\": [";
  for (std::size_t s = 0; s < obs::kTimelineSeriesCount; ++s) {
    out << (s == 0 ? "" : ", ") << '"'
        << obs::timeline_series_name(static_cast<obs::TimelineSeries>(s))
        << '"';
  }
  out << "],\n    \"points\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const obs::TimelinePoint& point = timeline[i];
    std::snprintf(num, sizeof(num), "%.9f", point.time);
    out << (i == 0 ? "\n      [" : ",\n      [") << num << ", " << point.shard;
    for (std::uint64_t value : point.values) out << ", " << value;
    out << "]";
  }
  out << (timeline.empty() ? "]\n" : "\n    ]\n");
  out << "  },\n  \"metrics\": ";
  metrics.write_json(out);
  out << "\n}\n";
}

void PipelineReport::write_prometheus(std::ostream& out) const {
  metrics.write_prometheus(out);
}

}  // namespace p2pgen::analysis
