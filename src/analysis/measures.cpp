#include "analysis/measures.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/parallel.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"

namespace p2pgen::analysis {
namespace {

constexpr std::size_t idx(Region r) { return geo::region_index(r); }

std::size_t hour_bin(double t) {
  return static_cast<std::size_t>(sim::hour_of_day(t));
}

DayPeriod period_of(Region region, double t) {
  return core::day_period(region, sim::hour_of_day(t));
}

}  // namespace

std::optional<std::size_t> key_period_of(double t) {
  const int hour = sim::hour_of_day(t);
  for (std::size_t i = 0; i < core::kKeyPeriods.size(); ++i) {
    if (core::kKeyPeriods[i].start_hour == hour) return i;
  }
  return std::nullopt;
}

void GeographyAccumulator::add_session(const ObservedSession& session,
                                       double trace_end) {
  const double end = session.has_end ? session.end : trace_end;
  double t = session.start;
  while (t < end) {
    const double hour_end =
        (std::floor(t / 3600.0) + 1.0) * 3600.0;  // next hour boundary
    const double chunk = std::min(end, hour_end) - t;
    const std::size_t bin = hour_bin(t);
    total_seconds[bin] += chunk;
    if (session.region) region_seconds[idx(*session.region)][bin] += chunk;
    t = std::min(end, hour_end);
  }
}

void GeographyAccumulator::add_sample(const AddressSample& sample) {
  const std::size_t bin = hour_bin(sample.time);
  sample_totals[bin] += 1.0;
  if (sample.region) sample_counts[idx(*sample.region)][bin] += 1.0;
}

GeographyByHour GeographyAccumulator::finalize() const {
  GeographyByHour geo;
  for (std::size_t h = 0; h < 24; ++h) {
    if (total_seconds[h] <= 0.0) continue;
    for (std::size_t r = 0; r < kRegions; ++r) {
      geo.onehop[r][h] = region_seconds[r][h] / total_seconds[h];
    }
  }
  for (std::size_t h = 0; h < 24; ++h) {
    if (sample_totals[h] <= 0.0) continue;
    for (std::size_t r = 0; r < kRegions; ++r) {
      geo.allpeers[r][h] = sample_counts[r][h] / sample_totals[h];
    }
  }
  return geo;
}

GeographyByHour geographic_distribution(const TraceDataset& dataset) {
  GeographyAccumulator acc;
  // One-hop peers: connected-session occupancy in seconds per hour bin.
  for (const auto& session : dataset.sessions) {
    acc.add_session(session, dataset.trace_end);
  }
  // All peers: PONG/QUERYHIT address samples per hour.
  for (const auto& sample : dataset.all_peer_addresses) {
    acc.add_sample(sample);
  }
  return acc.finalize();
}

void SharedFilesAccumulator::add_onehop(std::uint32_t shared_files) {
  if (shared_files <= 100) onehop_counts[shared_files] += 1.0;
  onehop_total += 1.0;
}

void SharedFilesAccumulator::add_allpeer(std::uint32_t shared_files) {
  if (shared_files <= 100) allpeers_counts[shared_files] += 1.0;
  allpeers_total += 1.0;
}

SharedFilesDistribution SharedFilesAccumulator::finalize() const {
  SharedFilesDistribution dist;
  if (onehop_total > 0.0) {
    for (std::size_t k = 0; k <= 100; ++k) {
      dist.onehop[k] = onehop_counts[k] / onehop_total;
    }
  }
  if (allpeers_total > 0.0) {
    for (std::size_t k = 0; k <= 100; ++k) {
      dist.allpeers[k] = allpeers_counts[k] / allpeers_total;
    }
  }
  return dist;
}

SharedFilesDistribution shared_files_distribution(const TraceDataset& dataset) {
  SharedFilesAccumulator acc;
  for (std::uint32_t v : dataset.onehop_shared_files) acc.add_onehop(v);
  for (std::uint32_t v : dataset.all_peer_shared_files) acc.add_allpeer(v);
  return acc.finalize();
}

LoadAccumulator::LoadAccumulator()
    : series_{stats::DayBinSeries(1800), stats::DayBinSeries(1800),
              stats::DayBinSeries(1800), stats::DayBinSeries(1800)} {}

void LoadAccumulator::add_session(const ObservedSession& session) {
  if (session.removed || !session.region) return;
  for (const auto& query : session.queries) {
    if (!query.kept() || query.excluded_from_interarrival) continue;
    series_[idx(*session.region)].add(query.time);
  }
}

LoadByTime LoadAccumulator::finalize() const {
  LoadByTime load;
  for (std::size_t r = 0; r < kRegions; ++r) load.bins[r] = series_[r].stats();
  return load;
}

LoadByTime query_load(const TraceDataset& dataset) {
  LoadAccumulator acc;
  for (const auto& session : dataset.sessions) acc.add_session(session);
  return acc.finalize();
}

PassiveAccumulator::PassiveAccumulator()
    : passive_{stats::DayBinSeries(3600), stats::DayBinSeries(3600),
               stats::DayBinSeries(3600), stats::DayBinSeries(3600)},
      total_{stats::DayBinSeries(3600), stats::DayBinSeries(3600),
             stats::DayBinSeries(3600), stats::DayBinSeries(3600)} {}

void PassiveAccumulator::add_session(const ObservedSession& session) {
  if (session.removed || !session.region) return;
  const std::size_t r = idx(*session.region);
  total_[r].add(session.start);
  if (!session.active()) passive_[r].add(session.start);
}

PassiveFraction PassiveAccumulator::finalize() const {
  PassiveFraction result;
  for (std::size_t r = 0; r < kRegions; ++r) {
    const auto& p_days = passive_[r].per_day();
    const auto& t_days = total_[r].per_day();
    double overall_passive = 0.0;
    double overall_total = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
      auto& bin = result.bins[r][h];
      double sum = 0.0;
      std::size_t days = 0;
      for (std::size_t d = 0; d < t_days.size(); ++d) {
        const double tot = t_days[d][h];
        if (tot <= 0.0) continue;
        const double pas = d < p_days.size() ? p_days[d][h] : 0.0;
        const double ratio = pas / tot;
        bin.min = std::min(bin.min, ratio);
        bin.max = std::max(bin.max, ratio);
        sum += ratio;
        ++days;
        overall_passive += pas;
        overall_total += tot;
      }
      bin.mean = days > 0 ? sum / static_cast<double>(days) : 0.0;
      if (days == 0) bin.min = 0.0;
    }
    result.overall[r] =
        overall_total > 0.0 ? overall_passive / overall_total : 0.0;
  }
  return result;
}

PassiveFraction passive_fraction(const TraceDataset& dataset) {
  PassiveAccumulator acc;
  for (const auto& session : dataset.sessions) acc.add_session(session);
  return acc.finalize();
}

namespace {

/// Sessions per parallel work unit for session_measures().  Fixed so the
/// partial-measure boundaries — and with them the final sample order —
/// are independent of the thread count.
constexpr std::size_t kMeasureChunk = 512;

}  // namespace

void accumulate_session_measures(SessionMeasures& m,
                                 const ObservedSession& session) {
  {
    if (session.removed || !session.region) return;
    const std::size_t r = idx(*session.region);

    if (!session.active()) {
      const double d = session.duration();
      m.passive_duration_by_region[r].push_back(d);
      if (const auto kp = key_period_of(session.start)) {
        m.passive_duration_by_key_period[r][*kp].push_back(d);
      }
      const auto dp = static_cast<std::size_t>(period_of(*session.region,
                                                         session.start));
      m.passive_duration_by_day_period[r][dp].push_back(d);
      return;
    }

    const std::size_t n = session.counted_queries();
    m.queries_by_region[r].push_back(static_cast<double>(n));
    if (const auto kp = key_period_of(session.start)) {
      m.queries_by_key_period[r][*kp].push_back(static_cast<double>(n));
    }

    // First/last counted query define the session's query phase.
    const ObservedQuery* first = nullptr;
    const ObservedQuery* last = nullptr;
    const ObservedQuery* prev_kept = nullptr;
    const auto iac = static_cast<std::size_t>(core::interarrival_class(n));
    for (const auto& query : session.queries) {
      if (!query.kept()) continue;
      if (prev_kept != nullptr && !query.excluded_from_interarrival) {
        const double gap = query.time - prev_kept->time;
        m.interarrival_by_region[r].push_back(gap);
        m.interarrival_by_class[r][iac].push_back(gap);
        if (const auto kp = key_period_of(query.time)) {
          m.interarrival_by_key_period[r][*kp].push_back(gap);
        }
        const auto dp =
            static_cast<std::size_t>(period_of(*session.region, query.time));
        m.interarrival_by_day_period[r][dp].push_back(gap);
      }
      prev_kept = &query;
      if (!query.excluded_from_interarrival) {
        if (first == nullptr) first = &query;
        last = &query;
      }
    }
    if (first == nullptr) return;  // defensive: active implies counted > 0

    const double first_gap = first->time - session.start;
    const auto fqc = static_cast<std::size_t>(core::first_query_class(n));
    m.first_query_by_region[r].push_back(first_gap);
    m.first_query_by_class[r][fqc].push_back(first_gap);
    if (const auto kp = key_period_of(session.start)) {
      m.first_query_by_key_period[r][*kp].push_back(first_gap);
    }
    {
      const auto dp =
          static_cast<std::size_t>(period_of(*session.region, session.start));
      m.first_query_by_period_class[r][dp][fqc].push_back(first_gap);
    }

    const double last_gap = session.end - last->time;
    const auto lqc = static_cast<std::size_t>(core::last_query_class(n));
    m.after_last_by_region[r].push_back(last_gap);
    m.after_last_by_class[r][lqc].push_back(last_gap);
    if (const auto kp = key_period_of(last->time)) {
      m.after_last_by_key_period[r][*kp].push_back(last_gap);
    }
    {
      const auto dp =
          static_cast<std::size_t>(period_of(*session.region, last->time));
      m.after_last_by_period_class[r][dp][lqc].push_back(last_gap);
    }
  }
}

namespace {

void append_samples(std::vector<double>& dst, std::vector<double>& src) {
  if (dst.empty()) {
    dst = std::move(src);
  } else {
    dst.insert(dst.end(), src.begin(), src.end());
  }
}

/// Moves every sample vector of `src` onto the end of the corresponding
/// vector of `dst`.  Called in chunk-index order, which makes the merged
/// sample order identical to a serial pass over the sessions.
void append_measures(SessionMeasures& dst, SessionMeasures& src) {
  for (std::size_t r = 0; r < kRegions; ++r) {
    append_samples(dst.passive_duration_by_region[r],
                   src.passive_duration_by_region[r]);
    append_samples(dst.queries_by_region[r], src.queries_by_region[r]);
    append_samples(dst.first_query_by_region[r], src.first_query_by_region[r]);
    append_samples(dst.interarrival_by_region[r],
                   src.interarrival_by_region[r]);
    append_samples(dst.after_last_by_region[r], src.after_last_by_region[r]);
    for (std::size_t k = 0; k < kKeyPeriodCount; ++k) {
      append_samples(dst.passive_duration_by_key_period[r][k],
                     src.passive_duration_by_key_period[r][k]);
      append_samples(dst.queries_by_key_period[r][k],
                     src.queries_by_key_period[r][k]);
      append_samples(dst.first_query_by_key_period[r][k],
                     src.first_query_by_key_period[r][k]);
      append_samples(dst.interarrival_by_key_period[r][k],
                     src.interarrival_by_key_period[r][k]);
      append_samples(dst.after_last_by_key_period[r][k],
                     src.after_last_by_key_period[r][k]);
    }
    for (std::size_t c = 0; c < core::kFirstQueryClassCount; ++c) {
      append_samples(dst.first_query_by_class[r][c],
                     src.first_query_by_class[r][c]);
    }
    for (std::size_t c = 0; c < core::kInterarrivalClassCount; ++c) {
      append_samples(dst.interarrival_by_class[r][c],
                     src.interarrival_by_class[r][c]);
    }
    for (std::size_t c = 0; c < core::kLastQueryClassCount; ++c) {
      append_samples(dst.after_last_by_class[r][c],
                     src.after_last_by_class[r][c]);
    }
    for (std::size_t p = 0; p < core::kDayPeriodCount; ++p) {
      append_samples(dst.passive_duration_by_day_period[r][p],
                     src.passive_duration_by_day_period[r][p]);
      append_samples(dst.interarrival_by_day_period[r][p],
                     src.interarrival_by_day_period[r][p]);
      for (std::size_t c = 0; c < core::kFirstQueryClassCount; ++c) {
        append_samples(dst.first_query_by_period_class[r][p][c],
                       src.first_query_by_period_class[r][p][c]);
      }
      for (std::size_t c = 0; c < core::kLastQueryClassCount; ++c) {
        append_samples(dst.after_last_by_period_class[r][p][c],
                       src.after_last_by_period_class[r][p][c]);
      }
    }
  }
}

}  // namespace

SessionMeasures session_measures(const TraceDataset& dataset) {
  obs::ObsSpan span("analysis.session_measures");
  const std::size_t n = dataset.sessions.size();
  std::vector<SessionMeasures> partial(
      util::ThreadPool::chunk_count(n, kMeasureChunk));
  analysis_pool().for_chunks(
      n, kMeasureChunk,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          accumulate_session_measures(partial[chunk], dataset.sessions[i]);
        }
      });

  SessionMeasures m;
  for (auto& part : partial) append_measures(m, part);
  return m;
}

std::array<std::vector<double>, kRegions> queries_without_rules45(
    const TraceDataset& dataset) {
  std::array<std::vector<double>, kRegions> out;
  for (const auto& session : dataset.sessions) {
    if (session.removed || !session.region) continue;
    const std::size_t n = session.kept_queries();
    if (n == 0) continue;
    out[idx(*session.region)].push_back(static_cast<double>(n));
  }
  return out;
}

}  // namespace p2pgen::analysis
