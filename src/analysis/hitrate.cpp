#include "analysis/hitrate.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace p2pgen::analysis {

HitRateReport hit_rate_report(const TraceDataset& dataset) {
  HitRateReport report;

  // Issue frequency per canonical keyword set (kept queries only), for
  // the popularity split.
  std::unordered_map<std::string, std::uint32_t> frequency;
  for (const auto& session : dataset.sessions) {
    if (session.removed) continue;
    for (const auto& query : session.queries) {
      if (query.kept() && !query.canonical.empty()) {
        ++frequency[query.canonical];
      }
    }
  }
  std::uint32_t popular_threshold = 0;
  if (!frequency.empty()) {
    std::vector<std::uint32_t> counts;
    counts.reserve(frequency.size());
    for (const auto& [q, c] : frequency) counts.push_back(c);
    auto decile = counts.begin() + static_cast<long>(counts.size() * 9 / 10);
    std::nth_element(counts.begin(), decile, counts.end());
    popular_threshold = *decile;
  }

  std::array<std::uint64_t, geo::kRegionCount> answered_by_region{};
  std::uint64_t popular_queries = 0;
  std::uint64_t popular_answered = 0;
  std::uint64_t unpopular_queries = 0;
  std::uint64_t unpopular_answered = 0;

  for (const auto& session : dataset.sessions) {
    if (session.removed || !session.region) continue;
    const auto r = geo::region_index(*session.region);
    for (const auto& query : session.queries) {
      if (!query.kept() || query.guid_hash == 0 || query.canonical.empty()) {
        continue;
      }
      ++report.queries;
      ++report.queries_by_region[r];
      const auto it = dataset.queryhits_by_guid.find(query.guid_hash);
      const std::uint32_t hits = it == dataset.queryhits_by_guid.end()
                                     ? 0
                                     : it->second;
      report.hits_per_query.push_back(static_cast<double>(hits));
      report.total_hits += hits;
      const bool answered = hits > 0;
      if (answered) {
        ++report.answered;
        ++answered_by_region[r];
      }
      const bool popular =
          popular_threshold > 0 && frequency[query.canonical] >= popular_threshold;
      if (popular) {
        ++popular_queries;
        popular_answered += answered ? 1 : 0;
      } else {
        ++unpopular_queries;
        unpopular_answered += answered ? 1 : 0;
      }
    }
  }

  for (std::size_t r = 0; r < geo::kRegionCount; ++r) {
    if (report.queries_by_region[r] > 0) {
      report.answered_fraction_by_region[r] =
          static_cast<double>(answered_by_region[r]) /
          static_cast<double>(report.queries_by_region[r]);
    }
  }
  if (popular_queries > 0) {
    report.popular_answered_fraction =
        static_cast<double>(popular_answered) /
        static_cast<double>(popular_queries);
  }
  if (unpopular_queries > 0) {
    report.unpopular_answered_fraction =
        static_cast<double>(unpopular_answered) /
        static_cast<double>(unpopular_queries);
  }
  return report;
}

}  // namespace p2pgen::analysis
