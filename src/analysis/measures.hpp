// p2pgen — workload measures (paper Section 4, Figures 1–9).
//
// Each function reduces a (filtered) TraceDataset to the data behind one
// figure: hourly geography (Fig. 1), shared-files distributions (Fig. 2),
// diurnal query load (Fig. 3), passive fractions (Fig. 4), and the
// conditioned sample sets whose CCDFs are Figures 5–9.  Sample extraction
// and presentation are separated so the bench binaries can print curves
// and the model fitter can consume the same samples.
#pragma once

#include <array>
#include <vector>

#include "analysis/dataset.hpp"
#include "core/conditions.hpp"
#include "stats/histogram.hpp"

namespace p2pgen::analysis {

using core::DayPeriod;
using core::Region;

inline constexpr std::size_t kRegions = geo::kRegionCount;
inline constexpr std::size_t kKeyPeriodCount = core::kKeyPeriods.size();

/// Figure 1: fraction of peers per region per hour, for one-hop peers
/// (connected-session occupancy) and all peers (PONG/QUERYHIT addresses).
struct GeographyByHour {
  /// [region][hour] fractions; rows over regions sum to <= 1 (the
  /// remainder is unknown-origin).
  std::array<std::array<double, 24>, kRegions> onehop{};
  std::array<std::array<double, 24>, kRegions> allpeers{};
};
GeographyByHour geographic_distribution(const TraceDataset& dataset);

/// Figure 2: fraction of peers reporting k shared files, k = 0..100.
struct SharedFilesDistribution {
  std::array<double, 101> onehop{};
  std::array<double, 101> allpeers{};
};
SharedFilesDistribution shared_files_distribution(const TraceDataset& dataset);

/// Figure 3: kept queries per 30-minute bin, min/mean/max across days,
/// per region.
struct LoadByTime {
  std::array<std::vector<stats::DayBinSeries::BinStats>, kRegions> bins{};
};
LoadByTime query_load(const TraceDataset& dataset);

/// Figure 4: fraction of passive sessions among sessions starting in each
/// 1-hour bin, min/mean/max across days, per region.
struct PassiveFraction {
  struct Bin {
    double min = 1.0;
    double mean = 0.0;
    double max = 0.0;
  };
  std::array<std::array<Bin, 24>, kRegions> bins{};
  /// Overall passive fraction per region (all hours pooled).
  std::array<double, kRegions> overall{};
};
PassiveFraction passive_fraction(const TraceDataset& dataset);

/// Figures 5–9: the conditioned sample sets.  Durations/times in seconds.
struct SessionMeasures {
  // Figure 5 — passive session durations.
  std::array<std::vector<double>, kRegions> passive_duration_by_region{};
  std::array<std::array<std::vector<double>, kKeyPeriodCount>, kRegions>
      passive_duration_by_key_period{};
  std::array<std::array<std::vector<double>, core::kDayPeriodCount>, kRegions>
      passive_duration_by_day_period{};  // for Table A.1 fits

  // Figure 6 — #queries per active session (all five rules applied, the
  // count Section 4.5 bases the remaining analysis on).
  std::array<std::vector<double>, kRegions> queries_by_region{};
  std::array<std::array<std::vector<double>, kKeyPeriodCount>, kRegions>
      queries_by_key_period{};

  // Figure 7 — time until first kept query after session start.
  std::array<std::vector<double>, kRegions> first_query_by_region{};
  std::array<std::array<std::vector<double>, core::kFirstQueryClassCount>,
             kRegions>
      first_query_by_class{};
  std::array<std::array<std::vector<double>, kKeyPeriodCount>, kRegions>
      first_query_by_key_period{};
  std::array<std::array<std::array<std::vector<double>,
                                   core::kFirstQueryClassCount>,
                        core::kDayPeriodCount>,
             kRegions>
      first_query_by_period_class{};  // for Table A.3 fits

  // Figure 8 — query interarrival times (rules 4/5 exclusions applied).
  std::array<std::vector<double>, kRegions> interarrival_by_region{};
  std::array<std::array<std::vector<double>, core::kInterarrivalClassCount>,
             kRegions>
      interarrival_by_class{};
  std::array<std::array<std::vector<double>, kKeyPeriodCount>, kRegions>
      interarrival_by_key_period{};
  std::array<std::array<std::vector<double>, core::kDayPeriodCount>, kRegions>
      interarrival_by_day_period{};  // for Table A.4 fits

  // Figure 9 — time after the last kept query until session end.
  std::array<std::vector<double>, kRegions> after_last_by_region{};
  std::array<std::array<std::vector<double>, core::kLastQueryClassCount>,
             kRegions>
      after_last_by_class{};
  std::array<std::array<std::vector<double>, kKeyPeriodCount>, kRegions>
      after_last_by_key_period{};
  std::array<std::array<std::array<std::vector<double>,
                                   core::kLastQueryClassCount>,
                        core::kDayPeriodCount>,
             kRegions>
      after_last_by_period_class{};  // for Table A.5 fits
};
SessionMeasures session_measures(const TraceDataset& dataset);

/// Figure 6(c): #queries per active session when rules 4/5 are NOT
/// applied (all rule-1-3 survivors count).
std::array<std::vector<double>, kRegions> queries_without_rules45(
    const TraceDataset& dataset);

/// Key-period index of an absolute time (0..3) or nullopt.
std::optional<std::size_t> key_period_of(double t);

// ---------------------------------------------------------------------------
// Streaming-shareable accumulators.  Each holds the exact intermediate
// state of one materialized measure function above.  The materialized
// functions and the streaming pass (analysis/streaming.hpp) both feed
// them — one session / one sample at a time, in the same order — so the
// float arithmetic is literally the same code, which is what makes the
// two paths bit-identical rather than merely close.

/// Figure 1 state.  Session occupancy is an order-sensitive float sum:
/// callers must add sessions in SessionStart order.  Address samples are
/// exact +1.0 counts and may arrive in any order relative to sessions.
struct GeographyAccumulator {
  std::array<std::array<double, 24>, kRegions> region_seconds{};
  std::array<double, 24> total_seconds{};
  std::array<std::array<double, 24>, kRegions> sample_counts{};
  std::array<double, 24> sample_totals{};

  /// One-hop connected occupancy of one session, split at hour boundaries.
  void add_session(const ObservedSession& session, double trace_end);
  /// One PONG/QUERYHIT address sample.
  void add_sample(const AddressSample& sample);
  GeographyByHour finalize() const;
};

/// Figure 2 state (exact +1.0 counts; order-insensitive).
struct SharedFilesAccumulator {
  std::array<double, 101> onehop_counts{};
  std::array<double, 101> allpeers_counts{};
  double onehop_total = 0.0;
  double allpeers_total = 0.0;

  void add_onehop(std::uint32_t shared_files);
  void add_allpeer(std::uint32_t shared_files);
  SharedFilesDistribution finalize() const;
};

/// Figure 3 state.  Feed each surviving session after filtering.
class LoadAccumulator {
 public:
  LoadAccumulator();
  void add_session(const ObservedSession& session);
  LoadByTime finalize() const;

 private:
  std::array<stats::DayBinSeries, kRegions> series_;
};

/// Figure 4 state.  Feed each surviving session after filtering.
class PassiveAccumulator {
 public:
  PassiveAccumulator();
  void add_session(const ObservedSession& session);
  PassiveFraction finalize() const;

 private:
  std::array<stats::DayBinSeries, kRegions> passive_;
  std::array<stats::DayBinSeries, kRegions> total_;
};

/// Adds one (filtered) session's conditioned samples to `m` — the serial
/// inner loop of session_measures(), exposed so the streaming pass can
/// feed sessions in emission order and land every sample in the same
/// vector position a materialized pass would.
void accumulate_session_measures(SessionMeasures& m,
                                 const ObservedSession& session);

}  // namespace p2pgen::analysis
