// p2pgen — figure-data export.
//
// Writes the data series behind every figure of the paper as CSV files
// plus a gnuplot script (`plots.gp`) that renders the panels with the
// paper's axes (log-log CCDFs, time-of-day bins, rank pmfs).  This is the
// "regenerate the figures" path for people who want plots rather than the
// bench binaries' tables.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/dataset.hpp"
#include "analysis/filters.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/fault.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::analysis {

/// Exported file inventory.
struct FigureExport {
  std::string directory;
  std::vector<std::string> files;  // relative names, plots.gp included
};

/// Computes all measures of `dataset` and writes:
///   fig1_geography.csv        hour, region, all_peers, one_hop
///   fig2_shared_files.csv     shared_files, all_peers, one_hop
///   fig3_load.csv             bin_start_hour, region, min, mean, max
///   fig4_passive.csv          hour, region, min, mean, max
///   fig5_passive_duration.csv region, x_minutes, ccdf
///   fig6_queries.csv          region, x, ccdf
///   fig7_first_query.csv      region, x_seconds, ccdf
///   fig8_interarrival.csv     region, x_seconds, ccdf
///   fig9_after_last.csv       region, x_seconds, ccdf
///   fig11_popularity.csv      class, rank, frequency
///   plots.gp                  gnuplot script rendering all panels
/// The directory must already exist.  Throws std::runtime_error on I/O
/// failure.  Returns the inventory.
FigureExport export_figure_data(const TraceDataset& dataset,
                                const std::string& directory);

/// Fault / robustness counters of a measurement run: what the fault layer
/// injected (sim::FaultCounters), how the measurement node coped, and the
/// session-end-reason mix the trace recorded.  Consumers fill the
/// transport and node rows from TraceSimulation / MeasurementNode
/// accessors and derive the end mix with add_trace().
struct RobustnessReport {
  // Injected by the fault layer.
  sim::FaultCounters injected;

  // Transport totals.
  std::uint64_t transport_delivered = 0;
  std::uint64_t transport_dropped = 0;

  // Measurement-node hardening counters.
  std::uint64_t decode_errors = 0;            ///< malformed descriptors caught
  std::uint64_t clean_bytes_before_error = 0; ///< stream progress before each
  std::uint64_t forward_retries = 0;          ///< backoff retries scheduled
  std::uint64_t forward_retries_exhausted = 0;

  // Scenario-layer rows (zero outside the chaos layer).
  std::uint64_t shed_connections = 0;  ///< admission-cap 503 refusals
  std::uint64_t shed_queries = 0;      ///< queries dropped under overload
  std::uint64_t outage_crashes = 0;    ///< peers killed by regional outages

  // Session-end-reason mix observed in the trace.
  std::uint64_t bye_ends = 0;
  std::uint64_t teardown_ends = 0;
  std::uint64_t probe_ends = 0;  ///< silent peers + crashes (idle-probe reaps)
  std::uint64_t error_ends = 0;  ///< abnormal closes after a DecodeError

  /// Accumulates the end-reason mix from a recorded trace.
  void add_trace(const trace::Trace& trace);

  /// True when any fault fired or any hardening path ran.
  bool any_faults() const noexcept;
};

/// Pretty-prints the report as aligned "label: value" rows.
void print_robustness_report(std::ostream& out, const RobustnessReport& report);

/// Unified pipeline health report (DESIGN.md §8): the robustness rows,
/// the Table-2 filter rows, and a snapshot of every obs metric, in one
/// exportable object.  Strictly observational — capture() reads state,
/// it never alters simulation or analysis results.
struct PipelineReport {
  RobustnessReport robustness;
  FilterReport filters;
  obs::MetricsSnapshot metrics;

  /// Merged sim-time timeline (DESIGN.md §13); empty when timelines were
  /// off.  Byte-identical across thread counts, interruption and the
  /// materialized/streaming paths, so report diffs catch any drift in the
  /// time-resolved view, not just the run totals.  Callers fill these
  /// after capture() from whichever run path produced the merged stream.
  std::vector<obs::TimelinePoint> timeline;
  double timeline_tick_seconds = 0.0;

  /// Salvage loss accounting (DESIGN.md §14): what a salvage-mode run
  /// lost to media damage and censored from the analysis.  All-zero when
  /// the run was strict or the spool was clean, so the report shape is
  /// independent of the salvage setting.  Callers fill these after
  /// capture() from whichever path produced them (RecoverySummary or
  /// StreamingResult).
  trace::SalvageReport salvage;
  /// Trace end used to clamp open gap windows (+inf) for display only.
  double salvage_trace_end = 0.0;

  /// Bundles the given reports with a snapshot of the global registry.
  static PipelineReport capture(const RobustnessReport& robustness,
                                const FilterReport& filters);

  /// One JSON object:
  ///   {"robustness":{...},"filters":{...},"timeline":{...},"metrics":{...}}
  /// with every report row as a numeric field.  The timeline block holds
  /// tick_seconds, the series names, and one [time, shard, v0..vN] row
  /// per merged tick (an empty run emits an empty points array, so the
  /// report shape is independent of the timeline setting).
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition of the metrics snapshot.  The robustness
  /// and filter rows are already present as "fault_*", "node_*",
  /// "transport_*" and "filter_*" samples, published by the layers that
  /// produced them.
  void write_prometheus(std::ostream& out) const;
};

}  // namespace p2pgen::analysis
