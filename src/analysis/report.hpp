// p2pgen — figure-data export.
//
// Writes the data series behind every figure of the paper as CSV files
// plus a gnuplot script (`plots.gp`) that renders the panels with the
// paper's axes (log-log CCDFs, time-of-day bins, rank pmfs).  This is the
// "regenerate the figures" path for people who want plots rather than the
// bench binaries' tables.
#pragma once

#include <string>

#include "analysis/dataset.hpp"

namespace p2pgen::analysis {

/// Exported file inventory.
struct FigureExport {
  std::string directory;
  std::vector<std::string> files;  // relative names, plots.gp included
};

/// Computes all measures of `dataset` and writes:
///   fig1_geography.csv        hour, region, all_peers, one_hop
///   fig2_shared_files.csv     shared_files, all_peers, one_hop
///   fig3_load.csv             bin_start_hour, region, min, mean, max
///   fig4_passive.csv          hour, region, min, mean, max
///   fig5_passive_duration.csv region, x_minutes, ccdf
///   fig6_queries.csv          region, x, ccdf
///   fig7_first_query.csv      region, x_seconds, ccdf
///   fig8_interarrival.csv     region, x_seconds, ccdf
///   fig9_after_last.csv       region, x_seconds, ccdf
///   fig11_popularity.csv      class, rank, frequency
///   plots.gp                  gnuplot script rendering all panels
/// The directory must already exist.  Throws std::runtime_error on I/O
/// failure.  Returns the inventory.
FigureExport export_figure_data(const TraceDataset& dataset,
                                const std::string& directory);

}  // namespace p2pgen::analysis
