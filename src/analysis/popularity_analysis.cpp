#include "analysis/popularity_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sim/simulator.hpp"
#include "stats/zipf.hpp"

namespace p2pgen::analysis {
namespace {

using core::Region;

/// Index of a main region (NA=0, EU=1, Asia=2) or npos.
std::size_t main_region_index(const std::optional<Region>& region) {
  if (!region) return static_cast<std::size_t>(-1);
  const auto i = geo::region_index(*region);
  return i < 3 ? i : static_cast<std::size_t>(-1);
}

/// Ranked query list of one day for one region (or the whole class logic
/// below): sorted by frequency desc, then lexicographically for
/// determinism.
std::vector<std::pair<std::string, std::uint32_t>> ranked(
    const std::unordered_map<std::string, std::uint32_t>& freq) {
  std::vector<std::pair<std::string, std::uint32_t>> items(freq.begin(),
                                                           freq.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return items;
}

}  // namespace

DailyQueryTables::DailyQueryTables(const TraceDataset& dataset) {
  for (const auto& session : dataset.sessions) add_session(session);
  finalize(dataset.trace_end);
}

void DailyQueryTables::add_session(const ObservedSession& session) {
  if (session.removed) return;
  const std::size_t r = main_region_index(session.region);
  if (r == static_cast<std::size_t>(-1)) return;
  for (const auto& query : session.queries) {
    if (!query.kept() || query.canonical.empty()) continue;
    const auto day = static_cast<std::size_t>(std::max(0.0, query.time) /
                                              sim::kSecondsPerDay);
    if (day >= per_day_.size()) per_day_.resize(day + 1);
    per_day_[day][query.canonical][r] += 1;
  }
}

void DailyQueryTables::finalize(double trace_end) {
  const auto total_days = static_cast<std::size_t>(
      std::max(1.0, std::ceil(trace_end / sim::kSecondsPerDay)));
  per_day_.resize(total_days);
}

std::vector<QueryClassSizes> query_class_sizes(
    const DailyQueryTables& tables, const std::vector<std::size_t>& periods) {
  std::vector<QueryClassSizes> out;
  for (std::size_t period : periods) {
    QueryClassSizes row;
    row.period_days = period;
    if (period == 0 || tables.days() < period) {
      out.push_back(row);
      continue;
    }
    const std::size_t windows = tables.days() / period;
    for (std::size_t w = 0; w < windows; ++w) {
      // Union the per-region sets over the window.
      std::array<std::unordered_set<std::string>, 3> sets;
      for (std::size_t d = w * period; d < (w + 1) * period; ++d) {
        for (const auto& [query, counts] : tables.day(d)) {
          for (std::size_t r = 0; r < 3; ++r) {
            if (counts[r] > 0) sets[r].insert(query);
          }
        }
      }
      row.na += static_cast<double>(sets[0].size());
      row.eu += static_cast<double>(sets[1].size());
      row.asia += static_cast<double>(sets[2].size());
      auto intersect2 = [](const std::unordered_set<std::string>& a,
                           const std::unordered_set<std::string>& b) {
        const auto& small = a.size() <= b.size() ? a : b;
        const auto& large = a.size() <= b.size() ? b : a;
        std::size_t n = 0;
        for (const auto& q : small) n += large.count(q);
        return static_cast<double>(n);
      };
      row.na_eu += intersect2(sets[0], sets[1]);
      row.na_asia += intersect2(sets[0], sets[2]);
      row.eu_asia += intersect2(sets[1], sets[2]);
      std::size_t triple = 0;
      for (const auto& q : sets[2]) {
        if (sets[0].count(q) && sets[1].count(q)) ++triple;
      }
      row.all3 += static_cast<double>(triple);
    }
    const auto n = static_cast<double>(windows);
    row.na /= n;
    row.eu /= n;
    row.asia /= n;
    row.na_eu /= n;
    row.na_asia /= n;
    row.eu_asia /= n;
    row.all3 /= n;
    out.push_back(row);
  }
  return out;
}

HotSetDrift hot_set_drift(const DailyQueryTables& tables, core::Region region) {
  const std::size_t r = geo::region_index(region);
  if (r >= 3) throw std::invalid_argument("hot_set_drift: main regions only");

  // Per-day frequency map for the region, then ranked lists.
  std::vector<std::vector<std::pair<std::string, std::uint32_t>>> days;
  days.reserve(tables.days());
  for (std::size_t d = 0; d < tables.days(); ++d) {
    std::unordered_map<std::string, std::uint32_t> freq;
    for (const auto& [query, counts] : tables.day(d)) {
      if (counts[r] > 0) freq[query] = counts[r];
    }
    days.push_back(ranked(freq));
  }

  static constexpr std::array<std::pair<std::size_t, std::size_t>, 3> kBands = {
      {{1, 10}, {11, 20}, {21, 100}}};
  static constexpr std::array<std::size_t, 3> kTargets = {10, 20, 100};

  HotSetDrift drift;
  for (std::size_t d = 0; d + 1 < days.size(); ++d) {
    const auto& today = days[d];
    const auto& tomorrow = days[d + 1];
    if (today.empty() || tomorrow.empty()) continue;
    for (std::size_t t = 0; t < kTargets.size(); ++t) {
      const std::size_t top_n = std::min(kTargets[t], tomorrow.size());
      std::unordered_set<std::string> target;
      for (std::size_t i = 0; i < top_n; ++i) target.insert(tomorrow[i].first);
      for (std::size_t b = 0; b < kBands.size(); ++b) {
        const auto [lo, hi] = kBands[b];
        int found = 0;
        for (std::size_t rank = lo; rank <= std::min(hi, today.size()); ++rank) {
          if (target.count(today[rank - 1].first)) ++found;
        }
        drift.counts[b][t].push_back(found);
      }
    }
  }
  return drift;
}

PopularityDistributions popularity_distributions(const DailyQueryTables& tables,
                                                 std::size_t max_rank) {
  // Class of a query on a day: which of {NA, EU} issued it (Asia ignored
  // for the three Figure 11 panels).
  std::vector<double> na_acc(max_rank, 0.0);
  std::vector<double> eu_acc(max_rank, 0.0);
  std::vector<double> int_acc(max_rank, 0.0);
  std::size_t na_days = 0;
  std::size_t eu_days = 0;
  std::size_t int_days = 0;

  for (std::size_t d = 0; d < tables.days(); ++d) {
    std::unordered_map<std::string, std::uint32_t> na_only;
    std::unordered_map<std::string, std::uint32_t> eu_only;
    std::unordered_map<std::string, std::uint32_t> both;
    for (const auto& [query, counts] : tables.day(d)) {
      const bool in_na = counts[0] > 0;
      const bool in_eu = counts[1] > 0;
      if (in_na && in_eu) {
        both[query] = counts[0] + counts[1];
      } else if (in_na) {
        na_only[query] = counts[0];
      } else if (in_eu) {
        eu_only[query] = counts[1];
      }
    }
    auto accumulate = [max_rank](
                          const std::unordered_map<std::string, std::uint32_t>&
                              freq,
                          std::vector<double>& acc, std::size_t& day_count) {
      if (freq.empty()) return;
      const auto items = ranked(freq);
      double total = 0.0;
      for (const auto& [q, c] : items) total += c;
      for (std::size_t i = 0; i < std::min(max_rank, items.size()); ++i) {
        acc[i] += static_cast<double>(items[i].second) / total;
      }
      ++day_count;
    };
    accumulate(na_only, na_acc, na_days);
    accumulate(eu_only, eu_acc, eu_days);
    accumulate(both, int_acc, int_days);
  }

  auto finalize = [](std::vector<double> acc, std::size_t day_count) {
    ClassPopularity cp;
    if (day_count == 0) return cp;
    for (double& v : acc) v /= static_cast<double>(day_count);
    while (!acc.empty() && acc.back() <= 0.0) acc.pop_back();
    cp.pmf = std::move(acc);
    cp.fit_extent = cp.pmf.size();
    if (cp.fit_extent >= 2) {
      cp.zipf_alpha = stats::fit_zipf_alpha(cp.pmf, 1, cp.fit_extent);
    }
    return cp;
  };

  PopularityDistributions dist;
  dist.na_only = finalize(std::move(na_acc), na_days);
  dist.eu_only = finalize(std::move(eu_acc), eu_days);
  dist.intersection = finalize(std::move(int_acc), int_days);
  const std::size_t extent = dist.intersection.fit_extent;
  if (extent >= 4) {
    const std::size_t split = std::min<std::size_t>(45, extent - 1);
    dist.intersection_body_alpha =
        stats::fit_zipf_alpha(dist.intersection.pmf, 1, split);
    if (extent - split >= 2) {
      dist.intersection_tail_alpha =
          stats::fit_zipf_alpha(dist.intersection.pmf, split + 1, extent);
    }
  }
  return dist;
}

double estimate_daily_drift(const DailyQueryTables& tables, core::Region region,
                            std::size_t window) {
  const std::size_t r = geo::region_index(region);
  if (r >= 3) throw std::invalid_argument("estimate_daily_drift: main regions only");
  if (window == 0) throw std::invalid_argument("estimate_daily_drift: window > 0");

  double lost = 0.0;
  double total = 0.0;
  for (std::size_t d = 0; d + 1 < tables.days(); ++d) {
    std::unordered_map<std::string, std::uint32_t> today_freq;
    for (const auto& [query, counts] : tables.day(d)) {
      if (counts[r] > 0) today_freq[query] = counts[r];
    }
    if (today_freq.empty()) continue;
    const auto today = ranked(today_freq);
    const auto& tomorrow = tables.day(d + 1);
    const std::size_t n = std::min(window, today.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = tomorrow.find(today[i].first);
      const bool present = it != tomorrow.end() && it->second[r] > 0;
      lost += present ? 0.0 : 1.0;
      total += 1.0;
    }
  }
  return total > 0.0 ? lost / total : 0.0;
}

}  // namespace p2pgen::analysis
