// p2pgen — gap-aware censoring of salvaged traces (DESIGN.md §14).
//
// A salvage-mode read turns media damage into sim-time gap windows
// (trace::SalvageRange): intervals where an unknown number of records is
// missing.  Sessions whose lifetime overlaps a window are *censored* —
// their query counts, durations and interarrivals may be truncated by the
// damage, so feeding them to the filter rules or the appendix fits would
// silently bias the characterization.  This module removes them from the
// dataset BEFORE the filters run and counts exactly what was excluded, so
// the loss is always accounted, never mixed in.
//
// The overlap test is open-interval: the boundary records that define a
// window (the last record before the damage and the first one after it)
// decoded fine, so a session merely touching a window edge lost nothing
// and is kept.  The streaming pass relies on this: any window discovered
// after a session has been emitted starts at or after that session's end,
// which under the open-interval test can never overlap — so censoring at
// emission time gives verdicts identical to the materialized path's
// whole-report pass.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/dataset.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::analysis {

/// Sim-time gap windows of a salvage read, indexed by shard.  The shard
/// of a session comes from its merged (namespaced) id, so the same index
/// serves the materialized dataset and the streaming emitter.
class GapIndex {
 public:
  GapIndex() = default;
  explicit GapIndex(const trace::SalvageReport& report);

  bool empty() const noexcept { return windows_.empty(); }

  /// Open-interval overlap of [start, end] with any window on `shard`.
  /// NaN window ends (still-open windows of a mid-run streaming peek) are
  /// treated as +inf — conservative and, per the header note, never
  /// reachable by an emittable session anyway.
  bool intersects(unsigned shard, double start, double end) const;

  /// Shard derived from the session's merged id (trace::shard_of_session).
  bool intersects_session(const ObservedSession& session) const;

 private:
  std::unordered_map<unsigned, std::vector<std::pair<double, double>>>
      windows_;
};

/// Removes every session overlapping a gap window from `dataset` —
/// call BEFORE apply_filters — and accounts them in
/// `report.censored_sessions` / `report.censored_queries` (pre-filter
/// attached hop-1 queries).  Survivor order is preserved, so downstream
/// results match a trace that never contained the censored sessions.
void censor_dataset(TraceDataset& dataset, const GapIndex& gaps,
                    trace::SalvageReport& report);

/// Publishes `salvage.*` counters to the global registry.  Only when the
/// report shows damage: a clean salvage run exposes the exact same metric
/// surface as a strict run (part of the bit-identical contract).
void publish_salvage_metrics(const trace::SalvageReport& report);

}  // namespace p2pgen::analysis
