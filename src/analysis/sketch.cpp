#include "analysis/sketch.hpp"

#include <algorithm>
#include <cmath>

namespace p2pgen::analysis {

void StreamingMoments::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingMoments::merge(const StreamingMoments& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double StreamingMoments::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

namespace {

/// Bucket index of a value: underflow 0, log buckets 1..N, overflow N+1.
std::size_t bucket_of(double x) noexcept {
  if (!(x >= LogQuantileSketch::kMinValue)) return 0;  // NaN lands here too
  if (x >= LogQuantileSketch::kMaxValue) {
    return LogQuantileSketch::kBuckets - 1;
  }
  const double decades = std::log10(x / LogQuantileSketch::kMinValue);
  auto i = static_cast<std::size_t>(
      decades * static_cast<double>(LogQuantileSketch::kBucketsPerDecade));
  const std::size_t last_log =
      LogQuantileSketch::kBucketsPerDecade * LogQuantileSketch::kDecades - 1;
  if (i > last_log) i = last_log;  // float edge: clamp into the log range
  return i + 1;
}

/// Lower edge of log bucket i (1-based within the log range).
double bucket_lo(std::size_t i) noexcept {
  const double per = static_cast<double>(LogQuantileSketch::kBucketsPerDecade);
  return LogQuantileSketch::kMinValue *
         std::pow(10.0, static_cast<double>(i - 1) / per);
}

}  // namespace

void LogQuantileSketch::add(double x) noexcept {
  ++counts_[bucket_of(x)];
  ++count_;
}

void LogQuantileSketch::merge(const LogQuantileSketch& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
}

double LogQuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, matching nearest-rank quantiles.
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen < rank) continue;
    if (i == 0) return kMinValue;
    if (i == kBuckets - 1) return kMaxValue;
    const double lo = bucket_lo(i);
    const double hi = bucket_lo(i + 1);
    return std::sqrt(lo * hi);  // geometric midpoint
  }
  return kMaxValue;
}

}  // namespace p2pgen::analysis
