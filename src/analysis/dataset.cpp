#include "analysis/dataset.hpp"

#include <unordered_map>

#include "gnutella/message.hpp"

namespace p2pgen::analysis {

TraceDataset build_dataset(const trace::Trace& trace,
                           const geo::GeoIpDatabase& geodb) {
  TraceDataset ds;
  ds.stats = trace.stats();
  ds.trace_end = ds.stats.last_time;

  std::unordered_map<std::uint64_t, std::size_t> index;  // session id -> slot

  for (const auto& event : trace.events()) {
    if (const auto* start = std::get_if<trace::SessionStart>(&event)) {
      ObservedSession session;
      session.id = start->session_id;
      session.start = start->time;
      session.ip = start->ip;
      session.region = geodb.lookup(start->ip);
      session.ultrapeer = start->ultrapeer;
      session.user_agent = start->user_agent;
      index[session.id] = ds.sessions.size();
      ds.sessions.push_back(std::move(session));
    } else if (const auto* msg = std::get_if<trace::MessageEvent>(&event)) {
      switch (msg->type) {
        case gnutella::MessageType::kQuery: {
          if (msg->hops != 1) break;  // only one-hop peers are measurable
          ++ds.hop1_queries;
          const auto it = index.find(msg->session_id);
          if (it == index.end()) break;
          ObservedQuery query;
          query.time = msg->time;
          query.canonical = gnutella::canonical_keywords(msg->query);
          query.sha1 = msg->sha1;
          query.guid_hash = msg->guid_hash;
          ds.sessions[it->second].queries.push_back(std::move(query));
          break;
        }
        case gnutella::MessageType::kPong: {
          if (msg->hops >= 2) {
            ds.all_peer_addresses.push_back(
                {msg->time, geodb.lookup(msg->source_ip)});
            ds.all_peer_shared_files.push_back(msg->shared_files);
          } else {
            ds.onehop_shared_files.push_back(msg->shared_files);
          }
          break;
        }
        case gnutella::MessageType::kQueryHit: {
          if (msg->hops >= 2) {
            ds.all_peer_addresses.push_back(
                {msg->time, geodb.lookup(msg->source_ip)});
          }
          if (msg->guid_hash != 0) ++ds.queryhits_by_guid[msg->guid_hash];
          break;
        }
        default:
          break;
      }
    } else {
      const auto& end = std::get<trace::SessionEnd>(event);
      const auto it = index.find(end.session_id);
      if (it == index.end()) continue;
      auto& session = ds.sessions[it->second];
      session.end = end.time;
      session.has_end = true;
      session.end_reason = end.reason;
    }
  }

  // Sessions still open when the measurement stopped cannot contribute
  // duration or per-session measures.
  for (auto& session : ds.sessions) {
    if (!session.has_end) {
      session.end = ds.trace_end;
      session.removed = true;
    }
  }
  return ds;
}

}  // namespace p2pgen::analysis
