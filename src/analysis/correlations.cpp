#include "analysis/correlations.hpp"

#include <algorithm>
#include <vector>

#include "stats/summary.hpp"

namespace p2pgen::analysis {
namespace {

/// Median of a small scratch vector (destructive).
double median_of(std::vector<double>& v) {
  const auto mid = v.begin() + static_cast<long>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

}  // namespace

CorrelationReport correlation_report(const TraceDataset& dataset,
                                     std::size_t min_sessions) {
  // Per-region per-session columns.
  struct Columns {
    std::vector<double> queries;
    std::vector<double> duration;
    std::vector<double> first_gap;
    std::vector<double> last_gap;
    // interarrival medians exist only for sessions with >= 2 usable gaps
    std::vector<double> ia_queries;
    std::vector<double> ia_median;
  };
  std::array<Columns, geo::kRegionCount> columns;

  for (const auto& session : dataset.sessions) {
    if (session.removed || !session.region || !session.active()) continue;
    auto& c = columns[geo::region_index(*session.region)];

    const auto n = static_cast<double>(session.counted_queries());
    const ObservedQuery* first = nullptr;
    const ObservedQuery* last = nullptr;
    const ObservedQuery* prev = nullptr;
    std::vector<double> gaps;
    for (const auto& query : session.queries) {
      if (!query.kept()) continue;
      if (prev != nullptr && !query.excluded_from_interarrival) {
        gaps.push_back(query.time - prev->time);
      }
      prev = &query;
      if (query.excluded_from_interarrival) continue;
      if (first == nullptr) first = &query;
      last = &query;
    }
    if (first == nullptr) continue;

    c.queries.push_back(n);
    c.duration.push_back(session.duration());
    c.first_gap.push_back(first->time - session.start);
    c.last_gap.push_back(session.end - last->time);
    if (!gaps.empty()) {
      c.ia_queries.push_back(n);
      c.ia_median.push_back(median_of(gaps));
    }
  }

  CorrelationReport report;
  for (std::size_t r = 0; r < geo::kRegionCount; ++r) {
    auto& out = report.regions[r];
    const auto& c = columns[r];
    out.active_sessions = c.queries.size();
    if (c.queries.size() >= min_sessions) {
      out.duration_vs_queries =
          stats::spearman_correlation(c.duration, c.queries);
      out.first_query_vs_queries =
          stats::spearman_correlation(c.first_gap, c.queries);
      out.after_last_vs_queries =
          stats::spearman_correlation(c.last_gap, c.queries);
    }
    if (c.ia_queries.size() >= min_sessions) {
      out.interarrival_vs_queries =
          stats::spearman_correlation(c.ia_median, c.ia_queries);
    }
  }
  return report;
}

}  // namespace p2pgen::analysis
