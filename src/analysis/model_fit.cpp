#include "analysis/model_fit.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/parallel.hpp"
#include "obs/span.hpp"

namespace p2pgen::analysis {
namespace {

using core::DayPeriod;
using core::Region;
using stats::BimodalLogNormalFit;
using stats::BimodalLogNormalParetoFit;
using stats::BimodalWeibullLogNormalFit;

/// Can a body/tail split be fit on this sample?
bool splittable(const std::vector<double>& sample, double split,
                std::size_t min_samples) {
  if (sample.size() < min_samples) return false;
  std::size_t body = 0;
  for (double x : sample) body += x <= split ? 1 : 0;
  return body >= 2 && sample.size() - body >= 2;
}

}  // namespace

AppendixFits fit_appendix_tables(const SessionMeasures& measures,
                                 const FitSplits& splits,
                                 std::size_t min_samples) {
  obs::ObsSpan span("analysis.appendix_fits");
  AppendixFits fits;

  // Every (region, period) cell — and each region's Table A.2 fit — is
  // computed from its own sample set into its own slot of `fits`, so the
  // whole grid fans across the analysis pool with bit-identical results
  // for any thread count.  One flat index covers both:
  //   i < kRegions                 -> Table A.2 fit for region i,
  //   i >= kRegions                -> (region, period) cell for A.1/A.3-A.5.
  const std::size_t grid = kRegions * core::kDayPeriodCount;
  analysis_pool().run_indexed(kRegions + grid, [&](std::size_t i) {
    if (i < kRegions) {
      const std::size_t r = i;
      // Table A.2 (rounding-censored MLE: counts are discretized).
      if (measures.queries_by_region[r].size() >= min_samples) {
        fits.queries[r] =
            stats::fit_lognormal_discretized(measures.queries_by_region[r]);
      } else {
        fits.queries[r] = {0.0, 0.0};  // sigma 0 = not fit
      }
      return;
    }
    const std::size_t cell = i - kRegions;
    const std::size_t r = cell / core::kDayPeriodCount;
    const std::size_t p = cell % core::kDayPeriodCount;
    {
      // Table A.1.
      const auto& passive = measures.passive_duration_by_day_period[r][p];
      if (splittable(passive, splits.passive_split, min_samples)) {
        fits.passive[r][p] = stats::fit_bimodal_lognormal(
            passive, splits.passive_split, splits.passive_body_lo);
      } else {
        fits.passive[r][p] = BimodalLogNormalFit{};  // body_weight 0 = not fit
      }

      // Table A.3.
      const double first_split = p == static_cast<std::size_t>(DayPeriod::kPeak)
                                     ? splits.first_peak_split
                                     : splits.first_nonpeak_split;
      for (std::size_t c = 0; c < core::kFirstQueryClassCount; ++c) {
        const auto& sample = measures.first_query_by_period_class[r][p][c];
        if (splittable(sample, first_split, min_samples)) {
          fits.first_query[r][p][c] =
              stats::fit_bimodal_weibull_lognormal(sample, first_split);
        } else {
          fits.first_query[r][p][c] = BimodalWeibullLogNormalFit{};
        }
      }

      // Table A.4 (period-level, as printed in the paper's table).
      const auto& ia = measures.interarrival_by_day_period[r][p];
      if (splittable(ia, splits.interarrival_split, min_samples)) {
        fits.interarrival[r][p] =
            stats::fit_bimodal_lognormal_pareto(ia, splits.interarrival_split);
      } else {
        fits.interarrival[r][p] = BimodalLogNormalParetoFit{};
      }

      // Table A.5.
      for (std::size_t c = 0; c < core::kLastQueryClassCount; ++c) {
        const auto& sample = measures.after_last_by_period_class[r][p][c];
        if (sample.size() >= min_samples) {
          // Guard against zero gaps (end exactly at last query).
          std::vector<double> positive;
          positive.reserve(sample.size());
          for (double x : sample) positive.push_back(std::max(x, 1e-3));
          fits.after_last[r][p][c] = stats::fit_lognormal(positive);
        } else {
          fits.after_last[r][p][c] = {0.0, 0.0};
        }
      }
    }
  });
  return fits;
}

core::WorkloadModel fit_workload_model(const TraceDataset& dataset,
                                       const core::WorkloadModel& fallback) {
  return fit_workload_model_from_parts(
      geographic_distribution(dataset), passive_fraction(dataset),
      session_measures(dataset), DailyQueryTables(dataset), fallback);
}

core::WorkloadModel fit_workload_model_from_parts(
    const GeographyByHour& geography, const PassiveFraction& passive,
    const SessionMeasures& measures, const DailyQueryTables& tables,
    const core::WorkloadModel& fallback) {
  core::WorkloadModel model = fallback;  // inherit anything we cannot fit

  // ---- Region mix (Figure 1), from one-hop occupancy ------------------
  for (std::size_t h = 0; h < 24; ++h) {
    double total = 0.0;
    for (std::size_t r = 0; r < kRegions; ++r) total += geography.onehop[r][h];
    if (total <= 0.0) continue;  // no data for this hour: keep fallback row
    for (std::size_t r = 0; r < kRegions; ++r) {
      // Renormalize so unknown-origin mass is spread proportionally.
      model.region_mix[h][r] = geography.onehop[r][h] / total;
    }
  }

  // ---- Passive fractions (Figure 4) ------------------------------------
  for (std::size_t r = 0; r < kRegions; ++r) {
    if (passive.overall[r] > 0.0) model.passive_fraction[r] = passive.overall[r];
  }

  // ---- Appendix distribution fits --------------------------------------
  const FitSplits splits;
  const AppendixFits fits = fit_appendix_tables(measures, splits);

  for (std::size_t r = 0; r < kRegions; ++r) {
    if (fits.queries[r].sigma > 0.0) {
      model.queries_per_session[r] =
          stats::make_lognormal(fits.queries[r].mu, fits.queries[r].sigma);
    }
    for (std::size_t p = 0; p < core::kDayPeriodCount; ++p) {
      if (fits.passive[r][p].body_weight > 0.0) {
        model.passive_duration[r][p] = fits.passive[r][p].to_distribution();
      }
      for (std::size_t c = 0; c < core::kFirstQueryClassCount; ++c) {
        if (fits.first_query[r][p][c].body_weight > 0.0) {
          model.first_query[r][p][c] =
              fits.first_query[r][p][c].to_distribution();
        }
      }
      if (fits.interarrival[r][p].body_weight > 0.0) {
        // The paper's Table A.4 does not condition interarrival on the
        // query-count class except for Europe; the fitted model uses the
        // period-level fit for every class slot.
        for (std::size_t c = 0; c < core::kInterarrivalClassCount; ++c) {
          model.interarrival[r][p][c] =
              fits.interarrival[r][p].to_distribution();
        }
      }
      for (std::size_t c = 0; c < core::kLastQueryClassCount; ++c) {
        if (fits.after_last[r][p][c].sigma > 0.0) {
          model.after_last[r][p][c] = stats::make_lognormal(
              fits.after_last[r][p][c].mu, fits.after_last[r][p][c].sigma);
        }
      }
    }
  }

  // ---- Popularity model (Table 3 / Figures 10-11) -----------------------
  if (tables.days() >= 2) {
    const auto sizes = query_class_sizes(tables, {1});
    const auto pop = popularity_distributions(tables);
    if (!sizes.empty() && sizes[0].na > 0.0 && sizes[0].eu > 0.0 &&
        sizes[0].asia > 0.0) {
      const auto& s = sizes[0];
      auto& classes = model.popularity.classes;
      auto set_class = [&classes](core::QueryClass c, double size,
                                  double alpha) {
        auto& params = classes[static_cast<std::size_t>(c)];
        params.catalog_size = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::llround(size)));
        if (alpha > 0.0) params.alpha_body = alpha;
      };
      // Exclusive sizes by inclusion-exclusion.
      set_class(core::QueryClass::kNaOnly, s.na - s.na_eu - s.na_asia + s.all3,
                pop.na_only.zipf_alpha);
      set_class(core::QueryClass::kEuOnly, s.eu - s.na_eu - s.eu_asia + s.all3,
                pop.eu_only.zipf_alpha);
      set_class(core::QueryClass::kAsiaOnly,
                s.asia - s.na_asia - s.eu_asia + s.all3, 0.0);
      set_class(core::QueryClass::kNaEu, s.na_eu - s.all3,
                pop.intersection_body_alpha);
      {
        auto& na_eu =
            classes[static_cast<std::size_t>(core::QueryClass::kNaEu)];
        if (pop.intersection_tail_alpha > 0.0 &&
            na_eu.catalog_size > na_eu.split + 1) {
          na_eu.two_piece = true;
          na_eu.alpha_tail = pop.intersection_tail_alpha;
        } else {
          na_eu.two_piece = false;
        }
      }
      set_class(core::QueryClass::kNaAsia, s.na_asia - s.all3, 0.0);
      set_class(core::QueryClass::kEuAsia, s.eu_asia - s.all3, 0.0);
      set_class(core::QueryClass::kAll, s.all3, 0.0);
    }
    const double drift = estimate_daily_drift(tables, Region::kNorthAmerica);
    if (drift > 0.0 && drift < 1.0) model.popularity.daily_drift = drift;
  }

  model.validate();
  return model;
}

}  // namespace p2pgen::analysis
