// p2pgen — filter rules for system-generated queries (paper Section 3.3).
//
// Applied in the paper's order:
//   rule 1: discard QUERYs with empty keywords + SHA1 extension
//           (source-search re-queries for a known file);
//   rule 2: discard QUERYs whose keyword set already occurred in the same
//           session (automatic re-sends);
//   rule 3: discard whole sessions shorter than 64 seconds (software
//           quick-disconnects);
//   rule 4: EXCLUDE (from the interarrival measure only) queries arriving
//           less than 1 second after the previous one;
//   rule 5: EXCLUDE queries whose interarrival equals the previous
//           interarrival (fixed-interval replay).
// Rules 4/5 queries still count for the popularity and #queries/session
// measures — they are genuine user queries issued before the connection.
#pragma once

#include "analysis/dataset.hpp"

namespace p2pgen::analysis {

/// Which rules to apply (ablation bench switches these off).
struct FilterOptions {
  bool rule1_sha1 = true;
  bool rule2_repeats = true;
  bool rule3_short_sessions = true;
  bool rule4_subsecond = true;
  bool rule5_identical_gaps = true;
  double min_session_seconds = 64.0;
  double min_interarrival_seconds = 1.0;
  /// Tolerance for "identical" interarrival times, seconds.
  double identical_gap_epsilon = 1e-3;
};

/// The rows of Table 2.
struct FilterReport {
  std::uint64_t initial_queries = 0;   // hop-1 queries in ended sessions
  std::uint64_t initial_sessions = 0;  // sessions with an observed end
  std::uint64_t rule1_removed = 0;
  std::uint64_t rule2_removed = 0;
  std::uint64_t rule3_removed_queries = 0;
  std::uint64_t rule3_removed_sessions = 0;
  std::uint64_t final_queries = 0;   // surviving rules 1-3
  std::uint64_t final_sessions = 0;  // surviving rule 3
  std::uint64_t rule4_excluded = 0;
  std::uint64_t rule5_excluded = 0;
  std::uint64_t interarrival_queries = 0;  // usable for the IA measure
};

/// Applies the rules in place (marks queries/sessions) and reports counts.
/// Idempotent: re-running with the same options yields the same marks.
FilterReport apply_filters(TraceDataset& dataset, const FilterOptions& options = {});

/// Applies all five rules to ONE session, accumulating its Table-2 rows
/// into `report`.  Sessions are independent under every rule (rule 2's
/// repeat set is per-session), so summing per-session reports over any
/// session order equals apply_filters() exactly — this is the streaming
/// path's fused form of the five global passes.
void apply_filters_to_session(ObservedSession& session,
                              const FilterOptions& options,
                              FilterReport& report);

/// Publishes the Table-2 rows as `filter.*` counters (no-op when the
/// metrics registry is disabled).  apply_filters() calls this itself;
/// the streaming pass calls it once with its summed report.
void publish_filter_metrics(const FilterReport& report);

}  // namespace p2pgen::analysis
