#include "analysis/stability.hpp"

#include <vector>

#include "stats/ecdf.hpp"

namespace p2pgen::analysis {
namespace {

/// Per-half sample columns for one region.
struct HalfSamples {
  std::size_t sessions = 0;
  std::size_t passive = 0;
  std::vector<double> passive_duration;
  std::vector<double> queries;
  std::vector<double> interarrival;
};

double ks_or_zero(const std::vector<double>& a, const std::vector<double>& b,
                  std::size_t min_samples) {
  if (a.size() < min_samples || b.size() < min_samples) return 0.0;
  return stats::ks_distance(stats::Ecdf(a), stats::Ecdf(b));
}

}  // namespace

StabilityReport stability_report(const TraceDataset& dataset,
                                 std::size_t min_samples) {
  StabilityReport report;
  report.split_time = (dataset.stats.first_time + dataset.trace_end) / 2.0;

  std::array<std::array<HalfSamples, 2>, geo::kRegionCount> halves;

  for (const auto& session : dataset.sessions) {
    if (session.removed || !session.region) continue;
    const std::size_t half = session.start < report.split_time ? 0 : 1;
    auto& h = halves[geo::region_index(*session.region)][half];
    ++h.sessions;
    if (!session.active()) {
      ++h.passive;
      h.passive_duration.push_back(session.duration());
      continue;
    }
    h.queries.push_back(static_cast<double>(session.counted_queries()));
    const ObservedQuery* prev = nullptr;
    for (const auto& query : session.queries) {
      if (!query.kept()) continue;
      if (prev != nullptr && !query.excluded_from_interarrival) {
        h.interarrival.push_back(query.time - prev->time);
      }
      prev = &query;
    }
  }

  for (std::size_t r = 0; r < geo::kRegionCount; ++r) {
    auto& out = report.regions[r];
    const auto& first = halves[r][0];
    const auto& second = halves[r][1];
    out.sessions_first = first.sessions;
    out.sessions_second = second.sessions;
    if (first.sessions > 0) {
      out.passive_fraction_first =
          static_cast<double>(first.passive) /
          static_cast<double>(first.sessions);
    }
    if (second.sessions > 0) {
      out.passive_fraction_second =
          static_cast<double>(second.passive) /
          static_cast<double>(second.sessions);
    }
    out.passive_duration_ks =
        ks_or_zero(first.passive_duration, second.passive_duration, min_samples);
    out.queries_per_session_ks =
        ks_or_zero(first.queries, second.queries, min_samples);
    out.interarrival_ks =
        ks_or_zero(first.interarrival, second.interarrival, min_samples);
  }
  return report;
}

}  // namespace p2pgen::analysis
