// p2pgen — query popularity analysis (paper Section 4.6).
//
// Works on the popularity query set: queries surviving rules 1-3 (rules
// 4/5 queries are included — they are genuine user queries issued before
// the session connected).  Produces:
//   * Table 3 — per-region distinct-query set sizes and their
//     intersections for 1/2/4-day windows;
//   * Figure 10 — hot-set drift: how many of day n's top-10 / rank-11-20 /
//     rank-21-100 queries reappear in day n+1's top N;
//   * Figure 11 — the average per-day popularity pmf for the NA-only,
//     EU-only, and NA∩EU classes with fitted Zipf exponents.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dataset.hpp"
#include "core/conditions.hpp"

namespace p2pgen::analysis {

/// Per-day, per-region frequency tables of canonical query strings.
class DailyQueryTables {
 public:
  /// Empty tables for incremental building: the streaming pass feeds
  /// add_session() per emitted session, then finalize(trace_end).
  DailyQueryTables() = default;

  /// Builds from the dataset.  Only the three main regions are tracked.
  explicit DailyQueryTables(const TraceDataset& dataset);

  /// Adds one (filtered) session's popularity queries — rule-1-3
  /// survivors with non-empty canonical keywords.  Day rows grow on
  /// demand; counts are integer increments, so feeding sessions in any
  /// order builds the same tables.
  void add_session(const ObservedSession& session);

  /// Fixes the day-row count to ceil(trace_end / day) — exactly the shape
  /// the one-shot constructor pre-allocates (rows past the end are
  /// dropped, missing rows become empty), so incremental build + finalize
  /// equals constructing from the materialized dataset.
  void finalize(double trace_end);

  std::size_t days() const noexcept { return per_day_.size(); }

  /// Frequency map of one day: canonical string -> per-region counts
  /// (index 0 = NA, 1 = EU, 2 = Asia, following geo::Region values).
  using DayTable = std::unordered_map<std::string, std::array<std::uint32_t, 3>>;
  const DayTable& day(std::size_t d) const { return per_day_.at(d); }

 private:
  std::vector<DayTable> per_day_;
};

/// One Table 3 row set (averaged over all complete windows of the period).
struct QueryClassSizes {
  std::size_t period_days = 1;
  double na = 0.0;       // distinct queries from NA peers
  double eu = 0.0;
  double asia = 0.0;
  double na_eu = 0.0;    // |NA set ∩ EU set|
  double na_asia = 0.0;
  double eu_asia = 0.0;
  double all3 = 0.0;
};

/// Computes Table 3 for the given window lengths (paper: 4, 2, 1 days).
std::vector<QueryClassSizes> query_class_sizes(
    const DailyQueryTables& tables, const std::vector<std::size_t>& periods);

/// Figure 10 raw data: per day transition n -> n+1, the number of queries
/// in a source rank band of day n that appear in the top N of day n+1.
struct HotSetDrift {
  /// Source bands: [0] = ranks 1-10, [1] = 11-20, [2] = 21-100.
  /// Targets:      [0] = top 10,     [1] = top 20, [2] = top 100.
  /// counts[band][target] has one entry per day transition.
  std::array<std::array<std::vector<int>, 3>, 3> counts;
};

/// Drift of the popularity hot set for peers in `region`.
HotSetDrift hot_set_drift(const DailyQueryTables& tables, core::Region region);

/// Figure 11: average per-day pmf by rank for one query class, plus Zipf
/// fits.
struct ClassPopularity {
  std::vector<double> pmf;  // index 0 = rank 1; averaged across days
  double zipf_alpha = 0.0;  // single fit over ranks [1, fit_extent]
  std::size_t fit_extent = 0;
};

struct PopularityDistributions {
  ClassPopularity na_only;
  ClassPopularity eu_only;
  ClassPopularity intersection;  // NA ∩ EU
  double intersection_body_alpha = 0.0;  // ranks 1..45
  double intersection_tail_alpha = 0.0;  // ranks 46..max
};

/// Computes the Figure 11 panels (max_rank caps the pmf extent).
PopularityDistributions popularity_distributions(const DailyQueryTables& tables,
                                                 std::size_t max_rank = 100);

/// Estimate of the daily hot-set drift probability (the fraction of day
/// n's top-`window` queries that do NOT reappear anywhere in day n+1's
/// catalog) — used by fit_workload_model to rebuild PopularityModel.
double estimate_daily_drift(const DailyQueryTables& tables, core::Region region,
                            std::size_t window = 20);

}  // namespace p2pgen::analysis
