// p2pgen — one-pass streaming analysis over spool segments (DESIGN.md §11).
//
// The materialized pipeline loads the whole trace (read_spool →
// merge_traces → build_dataset → filters → measures → fits), so its peak
// memory is O(trace).  analyze_spools() produces the SAME results —
// bit-identical Table-1 stats, trace digest, Table-2 filter rows,
// measures, appendix fits and refit model — in one pass over the
// per-shard spools with peak memory O(segments in flight + open
// sessions):
//
//   * segments are CRC-validated, decoded and keyword-canonicalized in
//     parallel waves on the deterministic thread pool (trace/spool_reader
//     single-pass iterator: validation and decode share one read);
//   * a sequential consumer merges the decoded shard streams in the
//     exact (time, shard) order of trace::merge_traces, namespacing
//     session ids by kShardSessionStride and folding the patched record
//     bytes into the same FNV-1a stream binary_digest() computes;
//   * sessions are reconstructed online in a bounded table and, once
//     ended, emitted in SessionStart order — at which point the five
//     filter rules and every measure accumulator run with the SAME code
//     the materialized path uses (filters.hpp / measures.hpp /
//     popularity_analysis.hpp expose the per-session forms), so every
//     float lands in the same place in the same order.
//
// Parallelism only ever touches the decode phase, whose outputs are
// pure per-segment values consumed in a fixed order — results are
// therefore identical at any thread count, which the streaming
// determinism suite pins against the materialized oracle.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/filters.hpp"
#include "analysis/measures.hpp"
#include "analysis/model_fit.hpp"
#include "analysis/popularity_analysis.hpp"
#include "analysis/sketch.hpp"
#include "core/model.hpp"
#include "geo/geoip.hpp"
#include "obs/qtrace.hpp"
#include "obs/timeline.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::analysis {

struct StreamingOptions {
  /// Threads for the segment decode waves.  Never changes results.
  unsigned threads = 1;
  /// Filter rules applied at session emission.
  FilterOptions filters{};
  /// Model slots for conditions with insufficient data (fit_workload_model
  /// semantics).
  core::WorkloadModel fallback = core::WorkloadModel::paper_default();
  /// Hard cap on tracked sessions (open + ended-but-not-yet-emitted).
  /// The streaming pass is constant-memory only because this table stays
  /// bounded by session concurrency; exceeding the cap throws rather than
  /// silently degrading to O(trace).
  std::size_t max_tracked_sessions = std::size_t{1} << 22;

  /// Salvage mode (DESIGN.md §14): read the spools with
  /// trace::SpoolReadMode::kSalvage — interior damage and missing segment
  /// files become accounted gap windows instead of a thrown TraceIoError,
  /// sessions overlapping a window are censored out of the filters and
  /// fits (gaps.hpp), and the loss lands in StreamingResult::salvage.
  /// With a clean spool this path is bit-identical to the default.
  bool salvage = false;
};

/// Observability counters of one streaming pass (also published as
/// `streaming.*` metrics).  These describe the pass itself and are NOT
/// part of the materialized-equivalence surface.
struct StreamingStats {
  std::uint64_t segments_read = 0;
  std::uint64_t decode_waves = 0;
  std::uint64_t events = 0;
  std::uint64_t shards_torn = 0;  ///< shards whose spool had a torn tail
  /// High-water mark of sessions that were open (no SessionEnd yet).
  std::uint64_t max_open_sessions = 0;
  /// High-water mark of the whole tracked table: open sessions plus ended
  /// sessions waiting for an earlier still-open session to emit first.
  std::uint64_t max_tracked_sessions = 0;
  /// QUERY events whose session id matched no tracked session.  The
  /// materialized path drops exactly these too (no SessionStart seen), so
  /// a nonzero value here is normal for faulted traces; it is counted so
  /// the equivalence tests can prove nothing extra was dropped.
  std::uint64_t unmatched_query_events = 0;
  /// SessionEnd events whose id matched no tracked session.
  std::uint64_t unmatched_end_events = 0;
};

/// Everything the measurement pipeline derives from a trace, computed in
/// one streaming pass.  Fields mirror the materialized path's outputs
/// bit-for-bit; `streaming`, the moments and the sketches are extra.
struct StreamingResult {
  trace::TraceStats stats;         ///< == merged Trace::stats()
  std::uint64_t trace_digest = 0;  ///< == trace::binary_digest(merged)
  std::uint64_t events = 0;        ///< == merged trace.size()
  double trace_end = 0.0;
  /// SessionEnd reason counts, indexed by trace::EndReason — the rows
  /// RobustnessReport::add_trace() derives from the materialized trace.
  std::array<std::uint64_t, 4> end_reason_counts{};

  FilterReport filters;        ///< == apply_filters on the dataset
  GeographyByHour geography;   ///< == geographic_distribution
  SharedFilesDistribution shared_files;
  LoadByTime load;
  PassiveFraction passive;     ///< == passive_fraction
  SessionMeasures measures;    ///< == session_measures
  AppendixFits fits;           ///< == fit_appendix_tables(measures)
  core::WorkloadModel model;   ///< == fit_workload_model(dataset, fallback)

  StreamingStats streaming;
  /// Constant-memory extras: duration moments/quantiles of surviving
  /// sessions and an interarrival sketch (counted queries).
  StreamingMoments duration_moments;
  LogQuantileSketch duration_sketch;
  LogQuantileSketch interarrival_sketch;

  /// Merged query-lifecycle hop events, read back from the per-shard
  /// "qtrace.bin" sidecars the durable runner writes (empty when no
  /// sidecar exists — tracing was off).  Merged in the same (time,
  /// shard) order as the materialized path, so the published qtrace
  /// aggregates are identical to simulate_trace_durable's.
  std::vector<obs::QueryHopEvent> qtrace;

  /// Loss accounting of a salvage-mode pass: the gap windows the spool
  /// reader quarantined (ranges tagged by shard, merged in shard order)
  /// plus the sessions/queries censored from the analysis because they
  /// overlapped one.  Empty when options.salvage was off or the spools
  /// were clean.  Matches the materialized path's report (RecoverySummary
  /// salvage + censor_dataset counters) for identical damage.
  trace::SalvageReport salvage;

  /// Merged sim-time timeline ticks, read back from the per-shard
  /// "timeline.bin" sidecars under the same contract (empty when no
  /// sidecar exists — timelines were off).  Byte-identical to the
  /// materialized path's merged timeline at any thread count.
  std::vector<obs::TimelinePoint> timeline;
  /// Tick width of the loaded timeline sidecars (0 when none existed).
  double timeline_tick_seconds = 0.0;
};

/// Runs the one-pass analysis over per-shard spool directories (order
/// defines the shard index used for session-id namespacing — pass
/// behavior::checkpoint_shard_dirs() output).  Throws TraceIoError on
/// interior spool damage (torn tails of a last segment are tolerated,
/// exactly like read_spool) unless options.salvage is set — then damage
/// becomes accounted gaps in StreamingResult::salvage — and throws
/// std::runtime_error if the tracked-session cap is exceeded.
StreamingResult analyze_spools(const std::vector<std::string>& shard_dirs,
                               const geo::GeoIpDatabase& geodb,
                               const StreamingOptions& options = {});

}  // namespace p2pgen::analysis
