#include "analysis/gaps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "trace/trace.hpp"

namespace p2pgen::analysis {

GapIndex::GapIndex(const trace::SalvageReport& report) {
  for (const auto& range : report.ranges) {
    const double after = std::isnan(range.time_after)
                             ? std::numeric_limits<double>::infinity()
                             : range.time_after;
    windows_[range.shard].emplace_back(range.time_before, after);
  }
}

bool GapIndex::intersects(unsigned shard, double start, double end) const {
  const auto it = windows_.find(shard);
  if (it == windows_.end()) return false;
  for (const auto& [before, after] : it->second) {
    if (end > before && start < after) return true;
  }
  return false;
}

bool GapIndex::intersects_session(const ObservedSession& session) const {
  const auto shard =
      static_cast<unsigned>(trace::shard_of_session(session.id));
  return intersects(shard, session.start, session.end);
}

void censor_dataset(TraceDataset& dataset, const GapIndex& gaps,
                    trace::SalvageReport& report) {
  if (gaps.empty()) return;
  auto it = std::remove_if(
      dataset.sessions.begin(), dataset.sessions.end(),
      [&](const ObservedSession& session) {
        if (!gaps.intersects_session(session)) return false;
        ++report.censored_sessions;
        report.censored_queries += session.queries.size();
        return true;
      });
  dataset.sessions.erase(it, dataset.sessions.end());
}

void publish_salvage_metrics(const trace::SalvageReport& report) {
  if (!report.damaged()) return;
  auto& registry = obs::Registry::global();
  if (!registry.enabled()) return;
  registry.counter("salvage.ranges").add(report.ranges.size());
  registry.counter("salvage.frames_lost").add(report.frames_lost);
  registry.counter("salvage.bytes_quarantined").add(report.bytes_quarantined);
  registry.counter("salvage.records_recovered").add(report.records_recovered);
  registry.counter("salvage.censored_sessions").add(report.censored_sessions);
  registry.counter("salvage.censored_queries").add(report.censored_queries);
}

}  // namespace p2pgen::analysis
