#include "analysis/streaming.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/gaps.hpp"
#include "gnutella/message.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/spool.hpp"
#include "trace/spool_reader.hpp"
#include "trace/trace_io.hpp"
#include "util/thread_pool.hpp"

namespace p2pgen::analysis {
namespace {

/// One spool segment after its parallel decode: the events and the
/// canonicalized keyword strings of hop-1 queries (canonical_keywords
/// dominates decode cost, so it runs in the wave).  The raw frame bytes
/// are NOT kept: append_event_binary round-trips exactly (the checkpoint
/// replay digest-check is built on that), so the consumer re-encodes each
/// event — with its namespaced session id — when folding it into the
/// trace digest.
struct DecodedSegment {
  std::vector<trace::TraceEvent> events;
  std::vector<std::string> canonical;  // aligned; set for hop-1 QUERYs
  trace::SegmentReadResult read;
};

DecodedSegment decode_segment(const trace::SpoolReader& reader,
                              std::size_t index) {
  obs::ObsSpan span("streaming.segment_decode");
  DecodedSegment seg;
  seg.read = reader.read_segment(
      index, [&seg](const std::uint8_t* data, std::size_t size) {
        seg.events.push_back(trace::decode_event_binary(data, size));
      });
  seg.canonical.resize(seg.events.size());
  for (std::size_t i = 0; i < seg.events.size(); ++i) {
    const auto* msg = std::get_if<trace::MessageEvent>(&seg.events[i]);
    if (msg != nullptr && msg->type == gnutella::MessageType::kQuery &&
        msg->hops == 1) {
      seg.canonical[i] = gnutella::canonical_keywords(msg->query);
    }
  }
  return seg;
}

/// Per-shard read state of the deterministic merge.
struct ShardCursor {
  ShardCursor(const std::string& dir, trace::SpoolReadMode mode)
      : reader(dir, mode) {}

  trace::SpoolReader reader;
  std::uint64_t id_base = 0;          // shard * kShardSessionStride
  std::size_t next_segment = 0;       // next segment index to decode
  std::deque<DecodedSegment> ready;   // decoded, not yet fully consumed
  std::size_t event_pos = 0;          // position within ready.front()
  bool torn = false;                  // spool ended in a torn tail
  /// Salvage mode: the shard's gap accounting, fed one segment at a time
  /// in index order as decoded segments are pushed onto `ready`.
  trace::SalvageAssembler assembler;

  bool exhausted() const noexcept {
    return ready.empty() && next_segment >= reader.segment_count();
  }
};

/// How many decoded segments a shard may hold before the wave scheduler
/// stops prefetching for it.  Bounds streaming memory at
/// O(shards * depth * segment), independent of spool size.
constexpr std::size_t kPrefetchDepth = 2;

/// One reconstructed session plus its SessionStart sequence number — the
/// emission key that reproduces the materialized dataset's vector order.
struct TrackedSession {
  ObservedSession session;
  bool open = true;  // no SessionEnd consumed yet
};

/// The whole streaming pass.  A class only to keep the state shared by
/// the wave scheduler, the merge consumer and the emitter in one place.
class StreamingPass {
 public:
  StreamingPass(const std::vector<std::string>& shard_dirs,
                const geo::GeoIpDatabase& geodb,
                const StreamingOptions& options)
      : geodb_(geodb),
        options_(options),
        pool_(options.threads == 0 ? 1 : options.threads),
        shard_dirs_(shard_dirs) {
    const trace::SpoolReadMode mode = options.salvage
                                          ? trace::SpoolReadMode::kSalvage
                                          : trace::SpoolReadMode::kStrict;
    cursors_.reserve(shard_dirs.size());
    for (std::size_t k = 0; k < shard_dirs.size(); ++k) {
      cursors_.emplace_back(shard_dirs[k], mode);
      cursors_.back().id_base = static_cast<std::uint64_t>(k) *
                                trace::kShardSessionStride;
    }
    std::string header;
    trace::append_header_binary(header);
    digest_ = trace::fnv1a_update(trace::kFnvOffsetBasis, header.data(),
                                  header.size());
  }

  StreamingResult run() {
    obs::ObsSpan span("streaming.analyze");
    consume_all();
    return finalize();
  }

 private:
  // ---- decode waves ----------------------------------------------------

  /// Decodes the next wave of segments in parallel: one segment for every
  /// shard that is out of ready events (the consumer cannot pick a merge
  /// head without one), plus round-robin prefetch up to the pool width.
  /// Which segments are decoded when never affects results — only the
  /// consumer's fixed (time, shard) order does.
  void refill() {
    obs::ObsSpan span("streaming.decode_wave");
    std::vector<std::pair<std::size_t, std::size_t>> wave;  // (shard, segment)
    std::vector<std::size_t> pending(cursors_.size(), 0);
    for (std::size_t s = 0; s < cursors_.size(); ++s) {
      ShardCursor& cur = cursors_[s];
      if (cur.ready.empty() && cur.next_segment < cur.reader.segment_count()) {
        wave.emplace_back(s, cur.next_segment++);
        ++pending[s];
      }
    }
    const std::size_t width =
        std::max<std::size_t>(wave.size(), pool_.size());
    bool added = true;
    while (wave.size() < width && added) {
      added = false;
      for (std::size_t s = 0; s < cursors_.size() && wave.size() < width;
           ++s) {
        ShardCursor& cur = cursors_[s];
        if (cur.ready.size() + pending[s] >= kPrefetchDepth) continue;
        if (cur.next_segment >= cur.reader.segment_count()) continue;
        wave.emplace_back(s, cur.next_segment++);
        ++pending[s];
        added = true;
      }
    }
    if (wave.empty()) return;

    std::vector<DecodedSegment> decoded(wave.size());
    pool_.run_indexed(wave.size(), [&](std::size_t i) {
      decoded[i] = decode_segment(cursors_[wave[i].first].reader,
                                  wave[i].second);
    });
    for (std::size_t i = 0; i < wave.size(); ++i) {
      ShardCursor& cur = cursors_[wave[i].first];
      if (decoded[i].read.torn && !cur.torn) {
        cur.torn = true;
        ++stats_out_.shards_torn;
      }
      if (options_.salvage) {
        // Feed the shard's gap accounting in segment-index order (the
        // wave list preserves per-shard order), missing files included —
        // the exact protocol read_spool_salvage follows, so both paths
        // report identical gaps for identical damage.
        for (const std::size_t hole :
             cur.reader.missing_before(wave[i].second)) {
          cur.assembler.add_missing_segment(trace::spool_segment_name(hole));
        }
        cur.assembler.add_segment(decoded[i].read);
      }
      cur.ready.push_back(std::move(decoded[i]));
    }
    stats_out_.segments_read += wave.size();
    ++stats_out_.decode_waves;
  }

  /// Drops fully consumed segments and guarantees every non-exhausted
  /// shard has a ready head event, decoding waves as needed.
  void ensure_heads() {
    for (;;) {
      bool need = false;
      for (ShardCursor& cur : cursors_) {
        while (!cur.ready.empty() &&
               cur.event_pos >= cur.ready.front().events.size()) {
          cur.ready.pop_front();
          cur.event_pos = 0;
        }
        need = need ||
               (cur.ready.empty() &&
                cur.next_segment < cur.reader.segment_count());
      }
      if (!need) return;
      refill();
    }
  }

  // ---- deterministic merge consumer ------------------------------------

  void consume_all() {
    for (;;) {
      ensure_heads();
      // merge_traces pops by (time, shard index): scanning shards in
      // ascending index with a strict `<` reproduces that order exactly.
      std::size_t best = cursors_.size();
      double best_time = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < cursors_.size(); ++s) {
        const ShardCursor& cur = cursors_[s];
        if (cur.ready.empty()) continue;
        const double t =
            trace::event_time(cur.ready.front().events[cur.event_pos]);
        if (t < best_time) {
          best_time = t;
          best = s;
        }
      }
      if (best == cursors_.size()) return;  // all shards exhausted
      consume_one(cursors_[best]);
    }
  }

  void consume_one(ShardCursor& cur) {
    DecodedSegment& seg = cur.ready.front();
    const std::size_t pos = cur.event_pos++;
    trace::TraceEvent& event = seg.events[pos];

    // Namespace the session id exactly like merge_traces, then fold the
    // re-encoded record bytes into the running binary_digest stream
    // (append_event_binary is the exact encoding the spool held).
    if (cur.id_base != 0) {
      std::visit([&](auto& e) { e.session_id += cur.id_base; }, event);
    }
    encode_buf_.clear();
    trace::append_event_binary(event, encode_buf_);
    digest_ = trace::fnv1a_update(digest_, encode_buf_.data(),
                                  encode_buf_.size());
    ++events_;

    // Table-1 counters (Trace::stats(), one event at a time).
    const double t = trace::event_time(event);
    if (first_event_) {
      stats_.first_time = t;
      first_event_ = false;
    }
    stats_.first_time = std::min(stats_.first_time, t);
    stats_.last_time = std::max(stats_.last_time, t);

    if (const auto* start = std::get_if<trace::SessionStart>(&event)) {
      ++stats_.direct_connections;
      if (start->ultrapeer) {
        ++stats_.ultrapeer_connections;
      } else {
        ++stats_.leaf_connections;
      }
      on_session_start(*start);
    } else if (const auto* msg = std::get_if<trace::MessageEvent>(&event)) {
      switch (msg->type) {
        case gnutella::MessageType::kQuery:
          ++stats_.query_messages;
          if (msg->hops == 1) ++stats_.hop1_queries;
          on_query(*msg, seg.canonical[pos]);
          break;
        case gnutella::MessageType::kQueryHit:
          ++stats_.queryhit_messages;
          if (msg->hops >= 2) {
            geography_.add_sample({msg->time, geodb_.lookup(msg->source_ip)});
          }
          break;
        case gnutella::MessageType::kPing:
          ++stats_.ping_messages;
          break;
        case gnutella::MessageType::kPong:
          ++stats_.pong_messages;
          if (msg->hops >= 2) {
            geography_.add_sample({msg->time, geodb_.lookup(msg->source_ip)});
            shared_.add_allpeer(msg->shared_files);
          } else {
            shared_.add_onehop(msg->shared_files);
          }
          break;
        case gnutella::MessageType::kBye:
          ++stats_.bye_messages;
          break;
        case gnutella::MessageType::kRouteTableUpdate:
          ++stats_.route_update_messages;
          break;
      }
    } else {
      on_session_end(std::get<trace::SessionEnd>(event));
    }
  }

  // ---- online session reconstruction -----------------------------------

  void on_session_start(const trace::SessionStart& start) {
    const std::uint64_t seq = next_seq_++;
    TrackedSession& tracked = sessions_[seq];
    tracked.session.id = start.session_id;
    tracked.session.start = start.time;
    tracked.session.ip = start.ip;
    tracked.session.region = geodb_.lookup(start.ip);
    tracked.session.ultrapeer = start.ultrapeer;
    tracked.session.user_agent = start.user_agent;
    // Overwrites any older mapping, exactly like build_dataset's index:
    // on a (never simulator-produced) id reuse, later events attach to
    // the newest session and the older one ends up truncated.
    id_index_[start.session_id] = seq;
    ++open_count_;
    stats_out_.max_open_sessions =
        std::max(stats_out_.max_open_sessions, open_count_);
    stats_out_.max_tracked_sessions = std::max(
        stats_out_.max_tracked_sessions,
        static_cast<std::uint64_t>(sessions_.size()));
    if (sessions_.size() > options_.max_tracked_sessions) {
      throw std::runtime_error(
          "streaming: tracked-session table exceeded max_tracked_sessions (" +
          std::to_string(options_.max_tracked_sessions) +
          "); the spool holds more concurrently open sessions than the "
          "configured bound");
    }
  }

  void on_query(const trace::MessageEvent& msg, std::string& canonical) {
    if (msg.hops != 1) return;
    const auto it = id_index_.find(msg.session_id);
    if (it == id_index_.end()) {
      // The materialized path drops exactly these too: no SessionStart.
      ++stats_out_.unmatched_query_events;
      return;
    }
    ObservedQuery query;
    query.time = msg.time;
    query.canonical = std::move(canonical);
    query.sha1 = msg.sha1;
    query.guid_hash = msg.guid_hash;
    sessions_.at(it->second).session.queries.push_back(std::move(query));
  }

  void on_session_end(const trace::SessionEnd& end) {
    ++end_reason_counts_[static_cast<std::size_t>(end.reason)];
    const auto it = id_index_.find(end.session_id);
    if (it == id_index_.end()) {
      ++stats_out_.unmatched_end_events;
      return;
    }
    TrackedSession& tracked = sessions_.at(it->second);
    tracked.session.end = end.time;
    tracked.session.has_end = true;
    tracked.session.end_reason = end.reason;
    if (tracked.open) {
      tracked.open = false;
      --open_count_;
    }
    drain_emittable();
  }

  /// Emits every ended session at the front of the sequence order.  A
  /// still-open earlier session blocks later ended ones (they stay
  /// tracked), which is what keeps emission in SessionStart order — the
  /// order every order-sensitive accumulator requires.
  void drain_emittable() {
    while (!sessions_.empty()) {
      auto it = sessions_.begin();
      if (it->first != next_emit_ || !it->second.session.has_end) return;
      emit(it->second.session);
      erase_tracked(it);
    }
  }

  void erase_tracked(std::map<std::uint64_t, TrackedSession>::iterator it) {
    const auto id_it = id_index_.find(it->second.session.id);
    // Only drop the id mapping if it still points at this session (an id
    // reuse may have repointed it at a newer one).
    if (id_it != id_index_.end() && id_it->second == it->first) {
      id_index_.erase(id_it);
    }
    sessions_.erase(it);
    ++next_emit_;
  }

  /// True when the session overlaps a salvage gap window of its shard
  /// (open-interval, exactly GapIndex::intersects).  During the pass this
  /// peeks at the assembler's in-progress report: a window discovered
  /// later starts at or after this session's end (spool records are in
  /// time order), which the open-interval test can never match — so the
  /// mid-run verdicts equal the materialized path's whole-report pass.
  bool gap_censored(const ObservedSession& session) const {
    if (!options_.salvage) return false;
    const auto shard =
        static_cast<std::size_t>(trace::shard_of_session(session.id));
    if (shard >= cursors_.size()) return false;
    const trace::SalvageReport& report = salvage_finished_
                                             ? shard_salvage_[shard]
                                             : cursors_[shard].assembler.report();
    for (const auto& range : report.ranges) {
      const double after = std::isnan(range.time_after)
                               ? std::numeric_limits<double>::infinity()
                               : range.time_after;
      if (session.end > range.time_before && session.start < after) {
        return true;
      }
    }
    return false;
  }

  /// Runs the per-session tail of the materialized pipeline: the five
  /// filter rules, then every measure accumulator, in SessionStart order.
  /// Sessions overlapping a salvage gap are censored instead: counted,
  /// then dropped before any filter or measure sees them — identical to
  /// censor_dataset() running ahead of apply_filters materialized.
  void emit(ObservedSession& session) {
    if (gap_censored(session)) {
      ++censored_sessions_;
      censored_queries_ += session.queries.size();
      return;
    }
    apply_filters_to_session(session, options_.filters, filter_report_);
    // `stats_.last_time` is only consulted for sessions without an end,
    // which are emitted exclusively by the EOF flush — when it holds the
    // final trace_end.
    geography_.add_session(session, stats_.last_time);
    load_.add_session(session);
    passive_.add_session(session);
    accumulate_session_measures(measures_, session);
    tables_.add_session(session);

    if (!session.removed) {
      const double duration = session.duration();
      duration_moments_.add(duration);
      duration_sketch_.add(duration);
      const ObservedQuery* prev = nullptr;
      for (const auto& query : session.queries) {
        if (!query.kept() || query.excluded_from_interarrival) continue;
        if (prev != nullptr) interarrival_sketch_.add(query.time - prev->time);
        prev = &query;
      }
    }
  }

  // ---- EOF / result assembly -------------------------------------------

  StreamingResult finalize() {
    // Close the salvage accounting first: the EOF flush below emits
    // still-open sessions whose censor verdict needs the finished gap
    // windows (open ends patched to +inf).
    if (options_.salvage) {
      shard_salvage_.resize(cursors_.size());
      for (std::size_t k = 0; k < cursors_.size(); ++k) {
        shard_salvage_[k] = cursors_[k].assembler.finish();
      }
      salvage_finished_ = true;
    }
    // Sessions still open when the trace stopped: truncate at trace_end
    // and mark removed, exactly like build_dataset's final pass, then
    // flush everything still tracked in sequence order.
    while (!sessions_.empty()) {
      auto it = sessions_.begin();
      ObservedSession& session = it->second.session;
      if (!session.has_end) {
        session.end = stats_.last_time;
        session.removed = true;
      }
      emit(session);
      erase_tracked(it);
    }
    publish_filter_metrics(filter_report_);

    StreamingResult result;
    result.stats = stats_;
    result.trace_digest = digest_;
    result.events = events_;
    result.trace_end = stats_.last_time;
    result.end_reason_counts = end_reason_counts_;
    result.filters = filter_report_;
    result.geography = geography_.finalize();
    result.shared_files = shared_.finalize();
    result.load = load_.finalize();
    result.passive = passive_.finalize();
    result.measures = std::move(measures_);
    {
      obs::ObsSpan span("streaming.fits");
      result.fits = fit_appendix_tables(result.measures, FitSplits{});
      tables_.finalize(stats_.last_time);
      result.model = fit_workload_model_from_parts(
          result.geography, result.passive, result.measures, tables_,
          options_.fallback);
    }
    stats_out_.events = events_;
    result.streaming = stats_out_;
    result.duration_moments = duration_moments_;
    result.duration_sketch = duration_sketch_;
    result.interarrival_sketch = interarrival_sketch_;

    // Query-lifecycle sidecars (DESIGN.md §12): the durable producer
    // wrote one "qtrace.bin" per shard when tracing was on.  Reading
    // them back and merging in the same (time, shard) order reproduces
    // the materialized path's merged stream — and therefore the exact
    // same published aggregates.  Publish only when at least one sidecar
    // exists, mirroring the materialized rule (publish iff rate > 0), so
    // both paths expose the identical metric surface.
    {
      std::vector<std::vector<obs::QueryHopEvent>> per_shard(
          shard_dirs_.size());
      bool any_sidecar = false;
      for (std::size_t k = 0; k < shard_dirs_.size(); ++k) {
        if (obs::load_qtrace(obs::qtrace_sidecar_path(shard_dirs_[k]),
                             per_shard[k])) {
          any_sidecar = true;
        }
      }
      if (any_sidecar) {
        result.qtrace = obs::merge_qtrace(std::move(per_shard));
        obs::publish_qtrace_metrics(result.qtrace);
      }
    }

    // Timeline sidecars (DESIGN.md §13): identical replay contract for
    // "timeline.bin" — merge in (time, shard) order, publish iff at
    // least one sidecar exists, so the streaming run's timeline and its
    // published aggregates are byte-identical to the materialized path.
    {
      std::vector<std::vector<obs::TimelinePoint>> per_shard(
          shard_dirs_.size());
      bool any_sidecar = false;
      double tick_seconds = 0.0;
      for (std::size_t k = 0; k < shard_dirs_.size(); ++k) {
        if (obs::load_timeline(obs::timeline_sidecar_path(shard_dirs_[k]),
                               per_shard[k], &tick_seconds)) {
          any_sidecar = true;
        }
      }
      if (any_sidecar) {
        result.timeline = obs::merge_timeline(std::move(per_shard));
        result.timeline_tick_seconds = tick_seconds;
        obs::publish_timeline_metrics(result.timeline);
      }
    }

    // Merge the per-shard gap reports in shard order (deterministic at
    // any thread count) and publish — publish_salvage_metrics is a no-op
    // on a clean run, keeping the metric surface identical to strict.
    if (options_.salvage) {
      for (std::size_t k = 0; k < shard_salvage_.size(); ++k) {
        result.salvage.merge_shard(std::move(shard_salvage_[k]),
                                   static_cast<unsigned>(k));
      }
      result.salvage.censored_sessions = censored_sessions_;
      result.salvage.censored_queries = censored_queries_;
      publish_salvage_metrics(result.salvage);
    }

    publish_metrics(result.streaming);
    util::publish_pool_stats("pool.streaming", pool_.stats());
    return result;
  }

  static void publish_metrics(const StreamingStats& s) {
    auto& registry = obs::Registry::global();
    if (!registry.enabled()) return;
    registry.counter("streaming.segments_read").add(s.segments_read);
    registry.counter("streaming.decode_waves").add(s.decode_waves);
    registry.counter("streaming.events").add(s.events);
    registry.counter("streaming.shards_torn").add(s.shards_torn);
    registry.counter("streaming.unmatched_query_events")
        .add(s.unmatched_query_events);
    registry.counter("streaming.unmatched_end_events")
        .add(s.unmatched_end_events);
    registry.gauge("streaming.max_open_sessions")
        .record_max(static_cast<std::int64_t>(s.max_open_sessions));
    registry.gauge("streaming.max_tracked_sessions")
        .record_max(static_cast<std::int64_t>(s.max_tracked_sessions));
  }

  // Inputs.
  const geo::GeoIpDatabase& geodb_;
  const StreamingOptions& options_;
  util::ThreadPool pool_;
  std::vector<std::string> shard_dirs_;  ///< for the qtrace sidecars
  std::vector<ShardCursor> cursors_;

  // Merge + digest state.
  std::uint64_t digest_ = trace::kFnvOffsetBasis;
  std::string encode_buf_;
  std::uint64_t events_ = 0;
  trace::TraceStats stats_;
  bool first_event_ = true;
  std::array<std::uint64_t, 4> end_reason_counts_{};

  // Session table: sequence number -> session, plus id -> sequence.
  std::map<std::uint64_t, TrackedSession> sessions_;
  std::unordered_map<std::uint64_t, std::uint64_t> id_index_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_emit_ = 0;
  std::uint64_t open_count_ = 0;

  // Accumulators (the materialized measures' own state, fed per session).
  FilterReport filter_report_;
  GeographyAccumulator geography_;
  SharedFilesAccumulator shared_;
  LoadAccumulator load_;
  PassiveAccumulator passive_;
  SessionMeasures measures_;
  DailyQueryTables tables_;
  StreamingMoments duration_moments_;
  LogQuantileSketch duration_sketch_;
  LogQuantileSketch interarrival_sketch_;
  StreamingStats stats_out_;

  // Salvage censoring state (all inert unless options_.salvage).
  std::vector<trace::SalvageReport> shard_salvage_;  ///< finished reports
  bool salvage_finished_ = false;
  std::uint64_t censored_sessions_ = 0;
  std::uint64_t censored_queries_ = 0;
};

}  // namespace

StreamingResult analyze_spools(const std::vector<std::string>& shard_dirs,
                               const geo::GeoIpDatabase& geodb,
                               const StreamingOptions& options) {
  StreamingPass pass(shard_dirs, geodb, options);
  return pass.run();
}

}  // namespace p2pgen::analysis
