// p2pgen — parallel execution of the analysis passes.
//
// The analysis layer keeps its serial APIs (apply_filters,
// session_measures, fit_appendix_tables, ...); this header only controls
// how many threads those passes may use internally.  The contract is
// strict: thread count NEVER changes results.  Every parallel pass
// partitions its work with chunk boundaries that are a pure function of
// the input size (util::ThreadPool::for_chunks) or writes into
// preallocated per-task slots, and reduces partial results in chunk-index
// order — so a run with 8 threads is bit-identical to a run with 1,
// which the determinism suite (tests/test_parallel_analysis.cpp)
// enforces down to the doubles of the Appendix fit parameters.
#pragma once

#include <vector>

#include "stats/ecdf.hpp"
#include "util/thread_pool.hpp"

namespace p2pgen::analysis {

/// Sets how many threads analysis passes may use.  1 (the default) is
/// fully serial: no pool threads exist and every pass runs inline.
/// Call once at startup — the setting is process-global and not
/// synchronized against concurrently running analysis passes.
void set_analysis_threads(unsigned n);

/// Currently configured analysis thread count.
unsigned analysis_threads();

/// The shared pool the analysis passes run on (size analysis_threads();
/// created lazily, recreated when the setting changes).
util::ThreadPool& analysis_pool();

/// Builds one Ecdf per sample set, fanned across the analysis pool.
/// Output order matches input order.  Null entries produce empty Ecdfs.
std::vector<stats::Ecdf> build_ecdfs(
    const std::vector<const std::vector<double>*>& samples);

/// Drains the analysis pool's scheduler counters into the global obs
/// registry under "pool.analysis.*" (util::publish_pool_stats).  Call
/// between analysis phases — the counters are only quiescent while no
/// pass is running.
void publish_analysis_pool_metrics();

}  // namespace p2pgen::analysis
