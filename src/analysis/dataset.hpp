// p2pgen — trace dataset: reconstructed sessions + auxiliary samples.
//
// Mirrors Section 3.2 of the paper: connected sessions are bounded by
// handshake completion and connection teardown; the queries attributed to
// a session are the QUERY descriptors with hop count 1 received over it;
// peer regions come from a GeoIP lookup on the connection's address; the
// "all peers" samples (Figures 1 and 2) come from the addresses and
// shared-file counts advertised in PONG and QUERYHIT payloads.
#pragma once

#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "geo/geoip.hpp"
#include "trace/trace.hpp"

namespace p2pgen::analysis {

/// One hop-1 QUERY, with the filter pipeline's verdicts.
struct ObservedQuery {
  double time = 0.0;
  std::string canonical;  // canonical keyword set (identity per the paper)
  bool sha1 = false;
  std::uint64_t guid_hash = 0;  // correlates with QUERYHITs (hit-rate study)

  /// 0 = kept; 1/2 = removed by that filter rule.  Rules 4/5 do not
  /// remove a query, they only exclude it from the interarrival measure.
  int removed_by_rule = 0;
  bool excluded_from_interarrival = false;  // rules 4/5

  bool kept() const noexcept { return removed_by_rule == 0; }
};

/// One reconstructed connected session.
struct ObservedSession {
  std::uint64_t id = 0;
  double start = 0.0;
  double end = 0.0;
  bool has_end = false;  // false: still open when the trace stopped
  std::uint32_t ip = 0;
  std::optional<geo::Region> region;  // nullopt = unknown origin
  bool ultrapeer = false;
  std::string user_agent;
  trace::EndReason end_reason = trace::EndReason::kTeardown;
  std::vector<ObservedQuery> queries;

  /// Whether rule 3 (or truncation) removed the whole session.
  bool removed = false;

  double duration() const noexcept { return end - start; }

  /// Queries surviving rules 1-3 (call after filtering).  This is the
  /// Figure 6(c) count ("rules 4 & 5 not applied").
  std::size_t kept_queries() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queries) n += q.kept() ? 1 : 0;
    return n;
  }

  /// Queries surviving rules 1-3 AND not excluded by rules 4/5 — the
  /// query count the paper bases Section 4.5 on (Figure 6(a)/(b),
  /// Tables A.2/A.3/A.5).
  std::size_t counted_queries() const noexcept {
    std::size_t n = 0;
    for (const auto& q : queries) {
      n += (q.kept() && !q.excluded_from_interarrival) ? 1 : 0;
    }
    return n;
  }

  /// Post-filter activity classification (Section 4): active sessions
  /// issue at least one counted query.
  bool active() const noexcept { return counted_queries() > 0; }
};

/// A timestamped address sample (for the geography measures).
struct AddressSample {
  double time = 0.0;
  std::optional<geo::Region> region;
};

/// Everything the characterization consumes.
struct TraceDataset {
  std::vector<ObservedSession> sessions;

  /// Addresses advertised in PONG/QUERYHIT payloads with hops >= 2 — the
  /// "all peers" population sample.
  std::vector<AddressSample> all_peer_addresses;

  /// Shared-file counts from remote PONGs ("all peers", Figure 2)...
  std::vector<std::uint32_t> all_peer_shared_files;

  /// ...and from hop-1 PONGs (one-hop peers).
  std::vector<std::uint32_t> onehop_shared_files;

  /// QUERYHIT counts keyed by the GUID hash of the query they answer
  /// (only populated when the trace carries GUID hashes — format v2).
  std::unordered_map<std::uint64_t, std::uint32_t> queryhits_by_guid;

  /// Raw Table-1 counters.
  trace::TraceStats stats;

  /// Total number of hop-1 queries (pre-filter).
  std::uint64_t hop1_queries = 0;

  double trace_end = 0.0;
};

/// Builds the dataset from a trace.  Sessions that never ended are marked
/// removed (has_end = false) so they don't pollute duration measures —
/// there are at most ~max_connections of them.
TraceDataset build_dataset(const trace::Trace& trace,
                           const geo::GeoIpDatabase& geodb);

}  // namespace p2pgen::analysis
