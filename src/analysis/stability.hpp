// p2pgen — multi-day stability analysis.
//
// The paper repeatedly checks that its measures are stable across the
// measurement period by "separating the first and the second half of the
// measurement period" (passive fraction, §4.3; session duration, §4.4;
// #queries per session, §4.5) and finding "no significant difference".
// This module performs those comparisons: per region, the passive
// fraction of each half and two-sample KS distances between the halves'
// distributions of the key per-session measures.
#pragma once

#include <array>

#include "analysis/dataset.hpp"

namespace p2pgen::analysis {

/// Half-vs-half comparison for one region.
struct HalfComparison {
  std::size_t sessions_first = 0;
  std::size_t sessions_second = 0;

  double passive_fraction_first = 0.0;
  double passive_fraction_second = 0.0;

  /// Two-sample KS distances between the halves (0 when a half has fewer
  /// than `min_samples` observations for that measure).
  double passive_duration_ks = 0.0;
  double queries_per_session_ks = 0.0;
  double interarrival_ks = 0.0;
};

struct StabilityReport {
  std::array<HalfComparison, geo::kRegionCount> regions{};
  double split_time = 0.0;  // sessions starting before this go to half 1
};

/// Splits the (filtered) dataset at the trace midpoint and compares.
StabilityReport stability_report(const TraceDataset& dataset,
                                 std::size_t min_samples = 30);

}  // namespace p2pgen::analysis
