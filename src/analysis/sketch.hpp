// p2pgen — streaming moments and mergeable quantile sketches (DESIGN.md §11).
//
// The streaming analysis pass keeps the exact conditioned sample vectors
// for the appendix-table fitters (bit-identity with the materialized path
// demands the same doubles in the same order), but it also wants cheap,
// constant-memory summaries it can publish while the pass is still
// running — per-segment and per-shard partials that merge into global
// figures without a barrier.  Two primitives cover that:
//
//   * StreamingMoments — count/mean/variance/min/max by Welford's
//     recurrence, merged with Chan's pairwise update.  Deterministic for
//     a fixed feed order; merging partials in shard/segment order gives
//     the same result on every thread count.
//   * LogQuantileSketch — fixed log-spaced buckets with integer counts.
//     Integer adds commute, so the merged sketch is identical for ANY
//     feed or merge order, and quantiles are reproducible to the bucket's
//     relative width (~5% with the default 128 buckets per decade range).
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace p2pgen::analysis {

/// Welford/Chan running moments.  All state is a few doubles: merging a
/// sketch built per segment costs O(1).
class StreamingMoments {
 public:
  void add(double x) noexcept;

  /// Folds `other` in (Chan's parallel variance update).  Merge order
  /// must be deterministic (shard, then segment) for bitwise-stable
  /// results — float addition does not commute.
  void merge(const StreamingMoments& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 with fewer than 2 samples.
  double variance() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed quantile sketch over [kMinValue, kMaxValue): bucket i
/// covers one kBucketsPerDecade-th of a decade.  Values below the range
/// land in an underflow bucket, values at/above in an overflow bucket.
/// Counts are integers, so add/merge are exactly commutative: the sketch
/// a parallel pass assembles is byte-identical on every thread count and
/// merge order — the property the streaming determinism tests pin.
class LogQuantileSketch {
 public:
  static constexpr double kMinValue = 1e-3;   // 1 ms
  static constexpr double kMaxValue = 1e7;    // ~115 days
  static constexpr std::size_t kBucketsPerDecade = 16;
  static constexpr std::size_t kDecades = 10;  // 1e-3 .. 1e7
  static constexpr std::size_t kBuckets = kBucketsPerDecade * kDecades + 2;

  void add(double x) noexcept;
  void merge(const LogQuantileSketch& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }

  /// Value at quantile q in [0, 1]: the geometric midpoint of the bucket
  /// holding the q-th sample (range edge for under/overflow buckets).
  /// Relative error is bounded by the bucket width, ~15% per bucket at
  /// 16 buckets/decade.
  double quantile(double q) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
};

}  // namespace p2pgen::analysis
