#include "analysis/parallel.hpp"

#include <algorithm>
#include <memory>
#include <span>

#include "obs/span.hpp"

namespace p2pgen::analysis {
namespace {

unsigned g_threads = 1;
std::unique_ptr<util::ThreadPool> g_pool;

}  // namespace

void set_analysis_threads(unsigned n) {
  n = std::max(1u, n);
  if (n == g_threads && g_pool) return;
  g_pool.reset();  // join the old workers before resizing
  g_threads = n;
}

unsigned analysis_threads() { return g_threads; }

util::ThreadPool& analysis_pool() {
  if (!g_pool) g_pool = std::make_unique<util::ThreadPool>(g_threads);
  return *g_pool;
}

std::vector<stats::Ecdf> build_ecdfs(
    const std::vector<const std::vector<double>*>& samples) {
  obs::ObsSpan span("analysis.ecdf_build");
  std::vector<stats::Ecdf> out(samples.size(),
                               stats::Ecdf(std::span<const double>{}));
  analysis_pool().run_indexed(samples.size(), [&](std::size_t i) {
    if (samples[i] != nullptr) out[i] = stats::Ecdf(*samples[i]);
  });
  return out;
}

void publish_analysis_pool_metrics() {
  if (!g_pool) return;  // no pool: nothing ran, nothing to drain
  util::publish_pool_stats("pool.analysis", g_pool->stats());
}

}  // namespace p2pgen::analysis
