// p2pgen — correlation analysis (paper Section 4.5).
//
// The paper's correlation findings, which the synthetic workload model
// must encode as conditional distributions:
//   * session duration correlates with the number of queries issued
//     (positively — "a significant correlation between session duration
//     and the number of queries issued during the session");
//   * query interarrival time does NOT correlate with the query count for
//     North American peers, but DOES (negatively) for European peers
//     (Figure 8(b));
//   * time until first query and time after last query both grow with the
//     session's query count (Figures 7(b), 9(b)).
// This module computes those correlations from a measured dataset using
// Spearman rank correlation (robust under the heavy-tailed measures).
#pragma once

#include <array>

#include "analysis/dataset.hpp"
#include "core/conditions.hpp"

namespace p2pgen::analysis {

/// Per-region correlation coefficients between per-session measures.
/// Entries are NaN when fewer than `min_sessions` sessions contribute.
struct CorrelationReport {
  struct PerRegion {
    std::size_t active_sessions = 0;
    /// Spearman rho between session duration and #queries (counted).
    double duration_vs_queries = 0.0;
    /// Spearman rho between a session's MEDIAN interarrival gap and its
    /// query count (the Figure 8(b) question).
    double interarrival_vs_queries = 0.0;
    /// Spearman rho between time-until-first-query and #queries.
    double first_query_vs_queries = 0.0;
    /// Spearman rho between time-after-last-query and #queries.
    double after_last_vs_queries = 0.0;
  };

  std::array<PerRegion, geo::kRegionCount> regions{};
};

/// Computes the report over active, filtered sessions.
CorrelationReport correlation_report(const TraceDataset& dataset,
                                     std::size_t min_sessions = 30);

}  // namespace p2pgen::analysis
