// p2pgen — query hit-rate characterization (the paper's stated future
// work: "characterizing the query hit rate of the peers, including the
// correlation of hit rate with other measures").
//
// Works on format-v2 traces where QUERY and QUERYHIT descriptors carry
// GUID hashes: the hits a user query attracted are the QUERYHITs with the
// same GUID.  Requires a measurement node that forwards queries
// (MeasurementNode::Config::forward_fanout > 0), so responders actually
// see them.
#pragma once

#include <array>
#include <vector>

#include "analysis/dataset.hpp"

namespace p2pgen::analysis {

/// Hit-rate characterization of the kept user queries.
struct HitRateReport {
  std::uint64_t queries = 0;   // kept hop-1 queries with known GUIDs
  std::uint64_t answered = 0;  // queries that attracted >= 1 QUERYHIT
  std::uint64_t total_hits = 0;

  /// Hits per query (one entry per query, zeros included) — the CCDF of
  /// this sample is the hit-rate distribution.
  std::vector<double> hits_per_query;

  /// Fraction of queries answered, per region of the asking peer.
  std::array<double, geo::kRegionCount> answered_fraction_by_region{};
  std::array<std::uint64_t, geo::kRegionCount> queries_by_region{};

  /// Correlation with popularity: answered fraction for queries whose
  /// keyword set falls in the top popularity decile (by issue frequency)
  /// vs the rest.
  double popular_answered_fraction = 0.0;
  double unpopular_answered_fraction = 0.0;

  double answered_fraction() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(answered) /
                              static_cast<double>(queries);
  }
  double hits_per_answered() const {
    return answered == 0 ? 0.0
                         : static_cast<double>(total_hits) /
                               static_cast<double>(answered);
  }
};

/// Computes the hit-rate report over kept queries of surviving sessions.
HitRateReport hit_rate_report(const TraceDataset& dataset);

}  // namespace p2pgen::analysis
