#include "analysis/filters.hpp"

#include <cmath>
#include <unordered_set>

namespace p2pgen::analysis {

FilterReport apply_filters(TraceDataset& dataset, const FilterOptions& options) {
  FilterReport report;

  for (auto& session : dataset.sessions) {
    if (!session.has_end) continue;  // truncated: never counted
    session.removed = false;
    ++report.initial_sessions;
    report.initial_queries += session.queries.size();

    // Rule 3 first marks the session (the paper applies 1, 2, 3 in
    // sequence to the *query* counts; session-level removal is
    // independent of the query-level rules).
    const bool short_session =
        options.rule3_short_sessions &&
        session.duration() < options.min_session_seconds;

    std::unordered_set<std::string> seen;
    std::size_t surviving = 0;
    for (auto& query : session.queries) {
      query.removed_by_rule = 0;
      query.excluded_from_interarrival = false;

      // Rule 1: SHA1 source-search re-queries (empty keyword set).
      if (options.rule1_sha1 && query.sha1 && query.canonical.empty()) {
        query.removed_by_rule = 1;
        ++report.rule1_removed;
        continue;
      }
      // Rule 2: identical keyword set already issued in this session.
      if (options.rule2_repeats && !seen.insert(query.canonical).second) {
        query.removed_by_rule = 2;
        ++report.rule2_removed;
        continue;
      }
      // Rule 3: the whole session goes.
      if (short_session) {
        query.removed_by_rule = 3;
        ++report.rule3_removed_queries;
        continue;
      }
      ++surviving;
    }

    if (short_session) {
      session.removed = true;
      ++report.rule3_removed_sessions;
      continue;
    }
    ++report.final_sessions;
    report.final_queries += surviving;

    // Rules 4/5: mark exclusions from the interarrival measure among the
    // surviving queries.
    const ObservedQuery* prev = nullptr;
    double prev_gap = -1.0;
    for (auto& query : session.queries) {
      if (!query.kept()) continue;
      if (prev == nullptr) {
        // First query: no interarrival observation either way.
        prev = &query;
        prev_gap = -1.0;
        ++report.interarrival_queries;
        continue;
      }
      const double gap = query.time - prev->time;
      if (options.rule4_subsecond && gap < options.min_interarrival_seconds) {
        query.excluded_from_interarrival = true;
        ++report.rule4_excluded;
      } else if (options.rule5_identical_gaps && prev_gap >= 0.0 &&
                 std::abs(gap - prev_gap) <= options.identical_gap_epsilon) {
        query.excluded_from_interarrival = true;
        ++report.rule5_excluded;
      } else {
        ++report.interarrival_queries;
      }
      prev = &query;
      prev_gap = gap;
    }
  }
  return report;
}

}  // namespace p2pgen::analysis
