#include "analysis/filters.hpp"

#include <cmath>
#include <unordered_set>

#include "analysis/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace p2pgen::analysis {
namespace {

/// Sessions per parallel work unit.  A pure constant: chunk boundaries
/// must depend only on the dataset, never on the thread count, so the
/// chunk-ordered reduction below is identical for every pool size.
constexpr std::size_t kSessionChunk = 512;

// The rules run as five sequential parallel passes — one ObsSpan per
// paper rule — rather than one fused per-session loop.  Sessions are
// independent under every rule (rule 2's repeat set is per-session), and
// each pass only reads marks left by earlier passes, so the marks and the
// Table-2 counters are identical to the fused form's.

/// Pass 1: reset marks, count the initial Table-2 row, and remove SHA1
/// source-search re-queries (empty keyword set).
void pass_rule1(ObservedSession& session, const FilterOptions& options,
                FilterReport& report) {
  if (!session.has_end) return;  // truncated: never counted
  session.removed = false;
  ++report.initial_sessions;
  report.initial_queries += session.queries.size();
  for (auto& query : session.queries) {
    query.removed_by_rule = 0;
    query.excluded_from_interarrival = false;
    if (options.rule1_sha1 && query.sha1 && query.canonical.empty()) {
      query.removed_by_rule = 1;
      ++report.rule1_removed;
    }
  }
}

/// Pass 2: remove identical keyword sets re-issued within one session.
/// Only rule-1 survivors enter the repeat set, exactly as in the fused
/// loop (a rule-1 removal never shadowed a later genuine query).
void pass_rule2(ObservedSession& session, const FilterOptions& options,
                FilterReport& report) {
  if (!session.has_end || !options.rule2_repeats) return;
  std::unordered_set<std::string> seen;
  for (auto& query : session.queries) {
    if (query.removed_by_rule != 0) continue;
    if (!seen.insert(query.canonical).second) {
      query.removed_by_rule = 2;
      ++report.rule2_removed;
    }
  }
}

/// Pass 3: drop whole short sessions, and count the final Table-2 row
/// for the survivors.
void pass_rule3(ObservedSession& session, const FilterOptions& options,
                FilterReport& report) {
  if (!session.has_end) return;
  const bool short_session = options.rule3_short_sessions &&
                             session.duration() < options.min_session_seconds;
  if (short_session) {
    for (auto& query : session.queries) {
      if (query.removed_by_rule != 0) continue;
      query.removed_by_rule = 3;
      ++report.rule3_removed_queries;
    }
    session.removed = true;
    ++report.rule3_removed_sessions;
    return;
  }
  ++report.final_sessions;
  std::size_t surviving = 0;
  for (const auto& query : session.queries) surviving += query.kept() ? 1 : 0;
  report.final_queries += surviving;
}

/// Pass 4: exclude sub-second interarrivals from the interarrival
/// measure.  Marks only; the usable-query count is settled in pass 5,
/// which knows rule 5's verdict too.
void pass_rule4(ObservedSession& session, const FilterOptions& options,
                FilterReport& report) {
  if (!session.has_end || session.removed || !options.rule4_subsecond) return;
  const ObservedQuery* prev = nullptr;
  for (auto& query : session.queries) {
    if (!query.kept()) continue;
    if (prev != nullptr &&
        query.time - prev->time < options.min_interarrival_seconds) {
      query.excluded_from_interarrival = true;
      ++report.rule4_excluded;
    }
    prev = &query;
  }
}

/// Pass 5: exclude fixed-interval replays (gap equal to the previous
/// gap) and count the queries usable for the interarrival measure.  The
/// previous-gap window advances over every kept query — rule-4 exclusions
/// included — matching the fused loop, where exclusion never restarted
/// the gap chain.
void pass_rule5(ObservedSession& session, const FilterOptions& options,
                FilterReport& report) {
  if (!session.has_end || session.removed) return;
  const ObservedQuery* prev = nullptr;
  double prev_gap = -1.0;
  for (auto& query : session.queries) {
    if (!query.kept()) continue;
    if (prev == nullptr) {
      // First query: no interarrival observation either way.
      prev = &query;
      ++report.interarrival_queries;
      continue;
    }
    const double gap = query.time - prev->time;
    if (query.excluded_from_interarrival) {
      // Rule 4 got there first; rule 5 is never double-counted.
    } else if (options.rule5_identical_gaps && prev_gap >= 0.0 &&
               std::abs(gap - prev_gap) <= options.identical_gap_epsilon) {
      query.excluded_from_interarrival = true;
      ++report.rule5_excluded;
    } else {
      ++report.interarrival_queries;
    }
    prev = &query;
    prev_gap = gap;
  }
}

void add_report(FilterReport& total, const FilterReport& part) {
  total.initial_queries += part.initial_queries;
  total.initial_sessions += part.initial_sessions;
  total.rule1_removed += part.rule1_removed;
  total.rule2_removed += part.rule2_removed;
  total.rule3_removed_queries += part.rule3_removed_queries;
  total.rule3_removed_sessions += part.rule3_removed_sessions;
  total.final_queries += part.final_queries;
  total.final_sessions += part.final_sessions;
  total.rule4_excluded += part.rule4_excluded;
  total.rule5_excluded += part.rule5_excluded;
  total.interarrival_queries += part.interarrival_queries;
}

}  // namespace

void publish_filter_metrics(const FilterReport& report) {
  auto& registry = obs::Registry::global();
  if (!registry.enabled()) return;
  registry.counter("filter.initial_queries").add(report.initial_queries);
  registry.counter("filter.initial_sessions").add(report.initial_sessions);
  registry.counter("filter.rule1_removed").add(report.rule1_removed);
  registry.counter("filter.rule2_removed").add(report.rule2_removed);
  registry.counter("filter.rule3_removed_queries")
      .add(report.rule3_removed_queries);
  registry.counter("filter.rule3_removed_sessions")
      .add(report.rule3_removed_sessions);
  registry.counter("filter.final_queries").add(report.final_queries);
  registry.counter("filter.final_sessions").add(report.final_sessions);
  registry.counter("filter.rule4_excluded").add(report.rule4_excluded);
  registry.counter("filter.rule5_excluded").add(report.rule5_excluded);
  registry.counter("filter.interarrival_queries")
      .add(report.interarrival_queries);
}

void apply_filters_to_session(ObservedSession& session,
                              const FilterOptions& options,
                              FilterReport& report) {
  pass_rule1(session, options, report);
  pass_rule2(session, options, report);
  pass_rule3(session, options, report);
  pass_rule4(session, options, report);
  pass_rule5(session, options, report);
}

FilterReport apply_filters(TraceDataset& dataset, const FilterOptions& options) {
  obs::ObsSpan filters_span("analysis.filters");
  const std::size_t n = dataset.sessions.size();
  std::vector<FilterReport> partial(
      util::ThreadPool::chunk_count(n, kSessionChunk));

  const auto run_pass = [&](const char* span_name,
                            void (*pass)(ObservedSession&,
                                         const FilterOptions&,
                                         FilterReport&)) {
    obs::ObsSpan span(span_name);
    analysis_pool().for_chunks(
        n, kSessionChunk,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            pass(dataset.sessions[i], options, partial[chunk]);
          }
        });
  };
  run_pass("filter.rule1_sha1_requeries", pass_rule1);
  run_pass("filter.rule2_session_repeats", pass_rule2);
  run_pass("filter.rule3_short_sessions", pass_rule3);
  run_pass("filter.rule4_subsecond", pass_rule4);
  run_pass("filter.rule5_identical_gaps", pass_rule5);

  FilterReport report;
  for (const auto& part : partial) add_report(report, part);
  publish_filter_metrics(report);
  return report;
}

}  // namespace p2pgen::analysis
