#include "analysis/filters.hpp"

#include <cmath>
#include <unordered_set>

#include "analysis/parallel.hpp"

namespace p2pgen::analysis {
namespace {

/// Sessions per parallel work unit.  A pure constant: chunk boundaries
/// must depend only on the dataset, never on the thread count, so the
/// chunk-ordered reduction below is identical for every pool size.
constexpr std::size_t kSessionChunk = 512;

/// Applies rules 1-5 to one session and accumulates the Table-2 counters
/// into `report`.  Sessions are independent under every rule (rule 2's
/// repeat set is per-session), which is what makes this pass
/// embarrassingly parallel.
void filter_session(ObservedSession& session, const FilterOptions& options,
                    FilterReport& report) {
  if (!session.has_end) return;  // truncated: never counted
  session.removed = false;
  ++report.initial_sessions;
  report.initial_queries += session.queries.size();

  // Rule 3 first marks the session (the paper applies 1, 2, 3 in
  // sequence to the *query* counts; session-level removal is
  // independent of the query-level rules).
  const bool short_session = options.rule3_short_sessions &&
                             session.duration() < options.min_session_seconds;

  std::unordered_set<std::string> seen;
  std::size_t surviving = 0;
  for (auto& query : session.queries) {
    query.removed_by_rule = 0;
    query.excluded_from_interarrival = false;

    // Rule 1: SHA1 source-search re-queries (empty keyword set).
    if (options.rule1_sha1 && query.sha1 && query.canonical.empty()) {
      query.removed_by_rule = 1;
      ++report.rule1_removed;
      continue;
    }
    // Rule 2: identical keyword set already issued in this session.
    if (options.rule2_repeats && !seen.insert(query.canonical).second) {
      query.removed_by_rule = 2;
      ++report.rule2_removed;
      continue;
    }
    // Rule 3: the whole session goes.
    if (short_session) {
      query.removed_by_rule = 3;
      ++report.rule3_removed_queries;
      continue;
    }
    ++surviving;
  }

  if (short_session) {
    session.removed = true;
    ++report.rule3_removed_sessions;
    return;
  }
  ++report.final_sessions;
  report.final_queries += surviving;

  // Rules 4/5: mark exclusions from the interarrival measure among the
  // surviving queries.
  const ObservedQuery* prev = nullptr;
  double prev_gap = -1.0;
  for (auto& query : session.queries) {
    if (!query.kept()) continue;
    if (prev == nullptr) {
      // First query: no interarrival observation either way.
      prev = &query;
      prev_gap = -1.0;
      ++report.interarrival_queries;
      continue;
    }
    const double gap = query.time - prev->time;
    if (options.rule4_subsecond && gap < options.min_interarrival_seconds) {
      query.excluded_from_interarrival = true;
      ++report.rule4_excluded;
    } else if (options.rule5_identical_gaps && prev_gap >= 0.0 &&
               std::abs(gap - prev_gap) <= options.identical_gap_epsilon) {
      query.excluded_from_interarrival = true;
      ++report.rule5_excluded;
    } else {
      ++report.interarrival_queries;
    }
    prev = &query;
    prev_gap = gap;
  }
}

void add_report(FilterReport& total, const FilterReport& part) {
  total.initial_queries += part.initial_queries;
  total.initial_sessions += part.initial_sessions;
  total.rule1_removed += part.rule1_removed;
  total.rule2_removed += part.rule2_removed;
  total.rule3_removed_queries += part.rule3_removed_queries;
  total.rule3_removed_sessions += part.rule3_removed_sessions;
  total.final_queries += part.final_queries;
  total.final_sessions += part.final_sessions;
  total.rule4_excluded += part.rule4_excluded;
  total.rule5_excluded += part.rule5_excluded;
  total.interarrival_queries += part.interarrival_queries;
}

}  // namespace

FilterReport apply_filters(TraceDataset& dataset, const FilterOptions& options) {
  const std::size_t n = dataset.sessions.size();
  std::vector<FilterReport> partial(
      util::ThreadPool::chunk_count(n, kSessionChunk));
  analysis_pool().for_chunks(
      n, kSessionChunk,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          filter_session(dataset.sessions[i], options, partial[chunk]);
        }
      });

  FilterReport report;
  for (const auto& part : partial) add_report(report, part);
  return report;
}

}  // namespace p2pgen::analysis
