// p2pgen — the curated adversarial scenario matrix.
//
// A standing set of named scenarios exercising every axis of the chaos
// layer: flash crowds, churn storms, geo-correlated regional outages,
// hostile piecewise fault regimes, adversarial client mixes and graceful
// degradation under overload.  The matrix is what tests/test_scenario.cpp
// asserts survival invariants over, what the scenario-matrix CI job runs,
// and what BENCH_scenarios.json baselines.
//
// Scenario times are fractions of the run (0..1 of duration_days) so the
// same matrix stresses a 0.02-day test run and a 0.05-day CI run alike;
// curated_scenarios(duration_days) materializes them for one duration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace p2pgen::scenario {

/// All curated scenarios, with schedule times scaled to a run of
/// `duration_days` measurement days.  The first entry ("calm-zero") keeps
/// every severity at zero and every multiplier at 1.0: it must produce a
/// trace byte-identical to a run without any scenario at all.
std::vector<ScenarioSpec> curated_scenarios(double duration_days);

/// Looks up one curated scenario by name; std::nullopt when unknown.
std::optional<ScenarioSpec> find_curated(const std::string& name,
                                         double duration_days);

/// The curated scenario names, in matrix order (for --list-scenarios).
std::vector<std::string> curated_names();

}  // namespace p2pgen::scenario
