#include "scenario/curated.hpp"

namespace p2pgen::scenario {
namespace {

using behavior::ArrivalPoint;
using behavior::FaultPhase;
using behavior::RegionalOutage;

/// calm-zero: the digest-identity control.  Every scenario mechanism is
/// present (an arrival schedule, a fault phase, an outage) but every
/// severity is zero and every multiplier 1.0 — the run must be
/// byte-identical to a plain baseline simulation.
ScenarioSpec calm_zero(double d) {
  ScenarioSpec s;
  s.name = "calm-zero";
  s.description =
      "all scenario mechanisms present at zero severity; trace must equal "
      "the no-scenario baseline byte for byte";
  s.arrival_schedule.points = {{0.0, 1.0}, {d, 1.0}};
  s.fault_schedule.phases = {{0.25 * d, sim::FaultConfig{}}};
  RegionalOutage outage;
  outage.at_days = 0.5 * d;
  outage.duration_days = 0.25 * d;
  outage.region = geo::Region::kEurope;
  outage.severity = 0.0;
  outage.arrival_suppression = 0.0;
  s.outages = {outage};
  return s;
}

/// flash-crowd: arrivals ramp to 4x mid-run and back down, no help from
/// the degradation layer — the node must survive on admission capacity
/// alone.
ScenarioSpec flash_crowd(double d) {
  ScenarioSpec s;
  s.name = "flash-crowd";
  s.description = "arrival rate ramps 1x -> 4x -> 1x; degradation off";
  s.arrival_schedule.points = {
      {0.0, 1.0}, {0.30 * d, 1.0}, {0.45 * d, 4.0},
      {0.60 * d, 4.0}, {0.75 * d, 1.0}};
  return s;
}

/// flash-crowd-shed: the same ramp with graceful degradation enabled —
/// bounded pending-handshake admission and query shedding.
ScenarioSpec flash_crowd_shed(double d) {
  ScenarioSpec s = flash_crowd(d);
  s.name = "flash-crowd-shed";
  s.description =
      "flash crowd with admission caps and query shedding enabled";
  // Tight enough to actually shed under the 4x crowd at matrix scale.
  s.node.max_pending_handshakes = 2;
  s.node.query_shed_rate = 2.0;
  s.node.query_shed_burst = 4.0;
  return s;
}

/// churn-storm: a mid-run phase with a heavy crash hazard, then recovery;
/// the node heals its neighbor set through the replenish path.
ScenarioSpec churn_storm(double d) {
  ScenarioSpec s;
  s.name = "churn-storm";
  s.description =
      "crash-hazard storm for the middle third of the run; replenish on";
  sim::FaultConfig storm;
  storm.crash_rate = 1.0 / 900.0;  // mean peer lifetime 15 min under storm
  storm.half_open_prob = 0.05;
  sim::FaultConfig calm;
  s.fault_schedule.phases = {{0.33 * d, storm}, {0.66 * d, calm}};
  s.node.replenish = true;
  s.node.replenish_backoff_base = 0.5;
  s.node.replenish_backoff_max = 32.0;
  return s;
}

/// regional-outage-na: North America goes dark mid-run — 80 % of its
/// connected peers crash together and its arrivals are nearly suppressed
/// until the outage lifts.
ScenarioSpec regional_outage_na(double d) {
  ScenarioSpec s;
  s.name = "regional-outage-na";
  s.description =
      "North America outage: 80 % of connected NA peers crash at onset, "
      "NA arrivals suppressed 90 % for a quarter of the run";
  RegionalOutage outage;
  outage.at_days = 0.40 * d;
  outage.duration_days = 0.25 * d;
  outage.region = geo::Region::kNorthAmerica;
  outage.severity = 0.8;
  outage.arrival_suppression = 0.9;
  s.outages = {outage};
  return s;
}

/// regional-outage-eu-asia: two overlapping outages in different regions;
/// replenish keeps the neighbor set from collapsing.
ScenarioSpec regional_outage_eu_asia(double d) {
  ScenarioSpec s;
  s.name = "regional-outage-eu-asia";
  s.description =
      "overlapping Europe and Asia outages; replenish heals the slots";
  RegionalOutage europe;
  europe.at_days = 0.30 * d;
  europe.duration_days = 0.30 * d;
  europe.region = geo::Region::kEurope;
  europe.severity = 0.7;
  RegionalOutage asia;
  asia.at_days = 0.45 * d;
  asia.duration_days = 0.25 * d;
  asia.region = geo::Region::kAsia;
  asia.severity = 0.9;
  s.outages = {europe, asia};
  s.node.replenish = true;
  return s;
}

/// spammer-flood: a quarter of arrivals are query bots; the node forwards
/// queries, so duplicate suppression and the filter rules carry the load.
ScenarioSpec spammer_flood(double /*d*/) {
  ScenarioSpec s;
  s.name = "spammer-flood";
  s.description =
      "spambot client mix: machine-rate re-queries and replay storms, "
      "with query forwarding enabled";
  s.client_mix = "spammer";
  s.node.forward_fanout = 4;
  return s;
}

/// free-rider-drain: half the arrivals are zero-share leeches that churn
/// fast — maximal connection turnover for minimal contributed content.
ScenarioSpec free_rider_drain(double /*d*/) {
  ScenarioSpec s;
  s.name = "free-rider-drain";
  s.description =
      "free-rider client mix: zero-share fast-churning leeches dominate";
  s.client_mix = "free_rider";
  return s;
}

/// hostile-overlay: piecewise fault regimes sweeping loss, corruption,
/// duplication and jitter up and back down, with forward retries and
/// shedding enabled — the everything-at-once soak.
ScenarioSpec hostile_overlay(double d) {
  ScenarioSpec s;
  s.name = "hostile-overlay";
  s.description =
      "piecewise regimes: benign -> lossy+corrupting -> severe -> recover; "
      "forward retries, replenish and query shedding all enabled";
  sim::FaultConfig lossy;
  lossy.loss_prob = 0.02;
  lossy.corrupt_prob = 0.002;
  lossy.duplicate_prob = 0.01;
  lossy.jitter_seconds = 0.2;
  sim::FaultConfig severe = lossy;
  severe.loss_prob = 0.08;
  severe.corrupt_prob = 0.01;
  severe.crash_rate = 1.0 / 1800.0;
  severe.half_open_prob = 0.08;
  severe.half_open_after_mean = 60.0;
  sim::FaultConfig calm;
  s.fault_schedule.phases = {
      {0.20 * d, lossy}, {0.45 * d, severe}, {0.70 * d, calm}};
  s.node.forward_fanout = 3;
  s.node.forward_retry_max = 2;
  s.node.forward_retry_base = 1.0;
  s.node.forward_retry_max_delay = 8.0;
  s.node.replenish = true;
  s.node.query_shed_rate = 5.0;
  return s;
}

}  // namespace

std::vector<ScenarioSpec> curated_scenarios(double duration_days) {
  const double d = duration_days;
  return {calm_zero(d),          flash_crowd(d),
          flash_crowd_shed(d),   churn_storm(d),
          regional_outage_na(d), regional_outage_eu_asia(d),
          spammer_flood(d),      free_rider_drain(d),
          hostile_overlay(d)};
}

std::optional<ScenarioSpec> find_curated(const std::string& name,
                                         double duration_days) {
  for (auto& spec : curated_scenarios(duration_days)) {
    if (spec.name == name) return std::move(spec);
  }
  return std::nullopt;
}

std::vector<std::string> curated_names() {
  std::vector<std::string> names;
  for (const auto& spec : curated_scenarios(1.0)) names.push_back(spec.name);
  return names;
}

}  // namespace p2pgen::scenario
