// p2pgen — scenario execution and the survival-invariant harness.
//
// run_scenario drives one ScenarioSpec through the full measurement
// pipeline — sharded simulation, session reconstruction, filter rules,
// session measures, Appendix refits — and checks the survival invariants
// the chaos layer exists to enforce: the pipeline completes, the analysis
// stays well-formed, recovery counters stay bounded, and the trace's
// session-teardown mix agrees exactly with the node-side counters.
// run_matrix runs the curated matrix (or any spec list) and aggregates
// the outcomes; write_outcomes_json is the BENCH_scenarios.json format.
//
// Everything here inherits the simulation's determinism contract: for a
// fixed (spec, base config, shards) the trace digest — and therefore the
// whole outcome apart from wall_seconds — is byte-identical at any
// thread count.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/filters.hpp"
#include "analysis/report.hpp"
#include "scenario/spec.hpp"

namespace p2pgen::scenario {

/// How to run a scenario (or a matrix of them).
struct RunConfig {
  /// Base simulation parameters the specs are applied to.
  double duration_days = 0.05;
  double arrival_rate = 1.2;
  double warmup_days = 0.0;
  std::uint64_t seed = 20040315;

  unsigned shards = 2;
  unsigned threads = 1;

  /// When non-empty, run_scenario writes the scenario's unified
  /// PipelineReport as <report_dir>/<name>.report.json (the CI artifact).
  std::string report_dir;
};

/// The base TraceSimulationConfig run_scenario applies each spec to.
behavior::TraceSimulationConfig base_config(const RunConfig& run);

/// What one scenario run produced.
struct ScenarioOutcome {
  std::string name;
  std::uint64_t scenario_digest = 0;  ///< identity of the applied config
  std::uint64_t trace_digest = 0;     ///< byte-identity of the merged trace

  // Aggregated over shards.
  std::uint64_t events = 0;
  std::uint64_t peers_spawned = 0;
  std::uint64_t outage_crashes = 0;
  std::array<std::uint64_t, geo::kRegionCount> outage_crashes_by_region{};
  std::uint64_t shed_connections = 0;
  std::uint64_t shed_queries = 0;
  std::uint64_t replenish_scheduled = 0;
  std::uint64_t replenish_spawns = 0;
  std::array<std::uint64_t, 4> session_ends{};  ///< by trace::EndReason

  analysis::RobustnessReport robustness;
  analysis::FilterReport filters;

  bool completed = false;    ///< simulation ran to the horizon
  bool analysis_ok = false;  ///< reconstruction + filters + fits succeeded
  double wall_seconds = 0.0;

  /// Broken survival invariants, human-readable; empty means the scenario
  /// is green.
  std::vector<std::string> violations;

  bool green() const noexcept {
    return completed && analysis_ok && violations.empty();
  }
};

/// Runs one scenario end to end.  Never throws for in-scenario failures —
/// a crash or analysis error becomes a violation in the outcome; only
/// spec/config validation errors propagate.
ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunConfig& run);

/// Runs every spec in order (scenarios are sequential; shards within one
/// scenario use run.threads).
std::vector<ScenarioOutcome> run_matrix(const std::vector<ScenarioSpec>& specs,
                                        const RunConfig& run);

/// True when every outcome is green.
bool all_green(const std::vector<ScenarioOutcome>& outcomes);

/// Writes the outcome list as a JSON array (the BENCH_scenarios.json
/// format): digests as zero-padded hex strings, counters as numbers,
/// violations as strings.  wall_seconds is deliberately omitted — the
/// file must be byte-stable across machines for a fixed configuration.
void write_outcomes_json(std::ostream& out,
                         const std::vector<ScenarioOutcome>& outcomes,
                         const RunConfig& run);

}  // namespace p2pgen::scenario
