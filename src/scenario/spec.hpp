// p2pgen — declarative scenario specifications.
//
// A ScenarioSpec is the single declarative description of one adversarial
// (or benign) workload: base-parameter overrides, a client mix, a base
// fault regime, and the time-varying schedules of behavior/schedule.hpp.
// Specs come from JSON files (--scenario=storm.json) or from the curated
// matrix (curated.hpp); either way they are applied to a base
// TraceSimulationConfig with apply(), which leaves every field the spec
// does not mention untouched.  The scenario digest is simply
// simulation_config_digest(apply(base)): two scenarios that would shape
// the same trace share a digest, and any meaningful difference changes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "behavior/schedule.hpp"
#include "behavior/trace_simulation.hpp"

namespace p2pgen::scenario {

/// One declarative scenario.  Every field is optional in the JSON form;
/// unset optionals leave the base configuration's value in place.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;

  // Base-parameter overrides ---------------------------------------------
  std::optional<double> duration_days;
  std::optional<double> warmup_days;
  std::optional<double> arrival_rate;
  std::optional<double> diurnal_amplitude;
  std::optional<std::uint64_t> seed;

  /// Client population name (ClientPopulation::named).
  std::optional<std::string> client_mix;

  // Fault layer ----------------------------------------------------------
  /// Base fault regime (applies before the first fault_schedule boundary).
  std::optional<sim::FaultConfig> faults;
  behavior::FaultSchedule fault_schedule{};

  // Load shape -----------------------------------------------------------
  behavior::ArrivalSchedule arrival_schedule{};
  std::vector<behavior::RegionalOutage> outages{};

  // Node overrides (degradation / healing / forwarding) ------------------
  struct NodeOverrides {
    std::optional<std::size_t> max_connections;
    std::optional<int> forward_fanout;
    std::optional<int> forward_retry_max;
    std::optional<double> forward_retry_base;
    std::optional<double> forward_retry_max_delay;
    std::optional<bool> replenish;
    std::optional<std::size_t> replenish_target;
    std::optional<double> replenish_backoff_base;
    std::optional<double> replenish_backoff_max;
    std::optional<std::size_t> max_pending_handshakes;
    std::optional<double> query_shed_rate;
    std::optional<double> query_shed_burst;
  };
  NodeOverrides node{};

  /// Checks every field the spec sets: schedule monotonicity, probability
  /// ranges, known client mix, sensible override values.  Throws
  /// std::invalid_argument naming the offending field.
  void validate() const;

  /// Returns `base` with this spec's overrides and schedules applied.
  /// Calls validate() first.
  behavior::TraceSimulationConfig apply(
      behavior::TraceSimulationConfig base) const;

  /// Parses a spec from JSON text.  Unknown keys are an error (a typoed
  /// knob must never silently become a benign run).  Throws
  /// std::invalid_argument / JsonError with the key path in the message.
  static ScenarioSpec from_json(const std::string& text);

  /// Reads and parses a JSON spec file.
  static ScenarioSpec from_json_file(const std::string& path);
};

/// The scenario's identity under a given base configuration:
/// simulation_config_digest of the applied config.  Printed by the
/// pipeline next to the trace digest and recorded in BENCH_scenarios.json.
std::uint64_t scenario_digest(const ScenarioSpec& spec,
                              const behavior::TraceSimulationConfig& base);

/// Region name used by the JSON form and reports: "north_america",
/// "europe", "asia", "other".  parse throws std::invalid_argument.
geo::Region parse_region(const std::string& name);
const char* region_json_name(geo::Region region) noexcept;

}  // namespace p2pgen::scenario
