#include "scenario/runner.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "analysis/dataset.hpp"
#include "analysis/model_fit.hpp"
#include "behavior/sharded_simulation.hpp"
#include "obs/metrics.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::scenario {
namespace {

std::string hex_digest(std::uint64_t digest) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << digest;
  return out.str();
}

std::uint64_t counter_delta(const obs::MetricsSnapshot& before,
                            const obs::MetricsSnapshot& after,
                            const std::string& name) {
  return after.counter_value(name) - before.counter_value(name);
}

void json_escape(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setfill('0') << std::setw(4)
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

behavior::TraceSimulationConfig base_config(const RunConfig& run) {
  behavior::TraceSimulationConfig config;
  config.duration_days = run.duration_days;
  config.warmup_days = run.warmup_days;
  config.arrival_rate = run.arrival_rate;
  config.seed = run.seed;
  return config;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunConfig& run) {
  const auto t0 = std::chrono::steady_clock::now();
  ScenarioOutcome outcome;
  outcome.name = spec.name;

  // Spec/config validation errors propagate: a malformed spec is a caller
  // bug, not a survival failure of the node under test.
  const behavior::TraceSimulationConfig config =
      spec.apply(base_config(run));
  outcome.scenario_digest = behavior::simulation_config_digest(config);

  const auto before = obs::Registry::global().snapshot();

  trace::Trace trace;
  std::vector<behavior::ShardStats> shard_stats;
  try {
    trace = behavior::simulate_trace_sharded(core::WorkloadModel::paper_default(),
                                             config, run.shards, run.threads,
                                             &shard_stats);
    outcome.completed = true;
  } catch (const std::exception& e) {
    outcome.violations.push_back(std::string("simulation threw: ") + e.what());
    outcome.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return outcome;
  }

  outcome.trace_digest = trace::binary_digest(trace);
  outcome.events = trace.size();
  for (const auto& s : shard_stats) {
    outcome.peers_spawned += s.peers_spawned;
    outcome.outage_crashes += s.outage_crashes;
    for (std::size_t r = 0; r < geo::kRegionCount; ++r) {
      outcome.outage_crashes_by_region[r] += s.outage_crashes_by_region[r];
    }
    outcome.shed_connections += s.shed_connections;
    outcome.shed_queries += s.shed_queries;
    outcome.replenish_scheduled += s.replenish_scheduled;
    outcome.replenish_spawns += s.replenish_spawns;
    for (std::size_t r = 0; r < outcome.session_ends.size(); ++r) {
      outcome.session_ends[r] += s.session_ends[r];
    }
    outcome.robustness.injected.messages_lost += s.faults.messages_lost;
    outcome.robustness.injected.messages_corrupted += s.faults.messages_corrupted;
    outcome.robustness.injected.messages_duplicated +=
        s.faults.messages_duplicated;
    outcome.robustness.injected.messages_delayed += s.faults.messages_delayed;
    outcome.robustness.injected.node_crashes += s.faults.node_crashes;
    outcome.robustness.injected.half_open_links += s.faults.half_open_links;
    outcome.robustness.injected.sends_into_dead_link +=
        s.faults.sends_into_dead_link;
  }

  // Transport and node rows come from the registry delta around this run
  // (the matrix runs scenarios sequentially, so the delta is this
  // scenario's own contribution).
  const auto after = obs::Registry::global().snapshot();
  outcome.robustness.transport_delivered =
      counter_delta(before, after, "transport.messages_delivered");
  outcome.robustness.transport_dropped =
      counter_delta(before, after, "transport.messages_dropped");
  outcome.robustness.decode_errors =
      counter_delta(before, after, "node.decode_errors");
  outcome.robustness.clean_bytes_before_error =
      counter_delta(before, after, "node.clean_bytes_before_error");
  outcome.robustness.forward_retries =
      counter_delta(before, after, "node.forward_retries");
  outcome.robustness.forward_retries_exhausted =
      counter_delta(before, after, "node.forward_retries_exhausted");
  outcome.robustness.shed_connections = outcome.shed_connections;
  outcome.robustness.shed_queries = outcome.shed_queries;
  outcome.robustness.outage_crashes = outcome.outage_crashes;
  outcome.robustness.add_trace(trace);

  // Full analysis pass: the invariant is not just "didn't crash" but
  // "still yields a well-formed characterization".
  try {
    auto dataset = analysis::build_dataset(trace, geo::GeoIpDatabase::synthetic());
    outcome.filters = analysis::apply_filters(dataset);
    const auto measures = analysis::session_measures(dataset);
    const auto fits = analysis::fit_appendix_tables(measures);
    const auto na = geo::region_index(geo::Region::kNorthAmerica);
    if (!std::isfinite(fits.queries[na].mu) ||
        !std::isfinite(fits.queries[na].sigma)) {
      outcome.violations.push_back("Appendix query fit is not finite");
    }
    outcome.analysis_ok = true;
  } catch (const std::exception& e) {
    outcome.violations.push_back(std::string("analysis threw: ") + e.what());
  }

  // Survival invariants ---------------------------------------------------
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) outcome.violations.push_back(what);
  };
  check(outcome.events > 0, "trace is empty");

  // The trace's teardown mix must agree exactly with the node-side
  // histogram: every SessionEnd the nodes counted is in the trace and
  // vice versa (the geo-outage satellite's cross-check).
  check(outcome.session_ends[static_cast<std::size_t>(trace::EndReason::kBye)] ==
            outcome.robustness.bye_ends,
        "BYE teardown count disagrees between node and trace");
  check(outcome.session_ends[static_cast<std::size_t>(
            trace::EndReason::kIdleProbe)] == outcome.robustness.probe_ends,
        "idle-probe teardown count disagrees between node and trace");
  check(outcome.session_ends[static_cast<std::size_t>(
            trace::EndReason::kTeardown)] == outcome.robustness.teardown_ends,
        "transport teardown count disagrees between node and trace");
  check(outcome.session_ends[static_cast<std::size_t>(trace::EndReason::kError)] ==
            outcome.robustness.error_ends,
        "error teardown count disagrees between node and trace");

  // Recovery counters stay bounded: every spawn was scheduled, and every
  // scheduled timer traces back to a session death or a follow-on fire.
  const std::uint64_t total_ends = outcome.robustness.bye_ends +
                                   outcome.robustness.probe_ends +
                                   outcome.robustness.teardown_ends +
                                   outcome.robustness.error_ends;
  check(outcome.replenish_spawns <= outcome.replenish_scheduled,
        "replenish spawns exceed scheduled timers");
  check(outcome.replenish_scheduled <= total_ends + outcome.replenish_spawns,
        "replenish timers exceed session deaths + follow-on fires");
  if (!config.node.replenish) {
    check(outcome.replenish_scheduled == 0,
          "replenish disabled but timers were armed");
  }

  // Degradation counters only move when their knob is on.
  if (config.node.query_shed_rate <= 0.0) {
    check(outcome.shed_queries == 0, "query shedding disabled but queries shed");
  }
  if (config.node.max_pending_handshakes == 0) {
    check(outcome.shed_connections == 0,
          "admission cap disabled but connections shed");
  }

  // Outage accounting: crashes only under a declared outage, only in the
  // outage's regions, and never more than the overlay spawned.
  check(outcome.outage_crashes <= outcome.peers_spawned,
        "outage crashes exceed spawned peers");
  std::uint64_t by_region_total = 0;
  for (std::size_t r = 0; r < geo::kRegionCount; ++r) {
    by_region_total += outcome.outage_crashes_by_region[r];
    bool region_has_outage = false;
    for (const auto& outage : config.outages) {
      if (geo::region_index(outage.region) == r && outage.severity > 0.0) {
        region_has_outage = true;
      }
    }
    if (!region_has_outage) {
      check(outcome.outage_crashes_by_region[r] == 0,
            std::string("outage crashes in ") +
                std::string(geo::region_name(geo::kAllRegions[r])) +
                " without a declared outage");
    }
  }
  check(by_region_total == outcome.outage_crashes,
        "per-region outage crashes do not sum to the total");
  if (config.outages.empty()) {
    check(outcome.outage_crashes == 0, "outage crashes without any outage");
  }

  if (!run.report_dir.empty()) {
    std::filesystem::create_directories(run.report_dir);
    const auto path = std::filesystem::path(run.report_dir) /
                      (outcome.name + ".report.json");
    const auto report =
        analysis::PipelineReport::capture(outcome.robustness, outcome.filters);
    std::ofstream out(path);
    report.write_json(out);
    out << "\n";
    if (!out) {
      outcome.violations.push_back("failed writing " + path.string());
    }
  }

  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return outcome;
}

std::vector<ScenarioOutcome> run_matrix(const std::vector<ScenarioSpec>& specs,
                                        const RunConfig& run) {
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(specs.size());
  for (const auto& spec : specs) outcomes.push_back(run_scenario(spec, run));
  return outcomes;
}

bool all_green(const std::vector<ScenarioOutcome>& outcomes) {
  for (const auto& outcome : outcomes) {
    if (!outcome.green()) return false;
  }
  return !outcomes.empty();
}

void write_outcomes_json(std::ostream& out,
                         const std::vector<ScenarioOutcome>& outcomes,
                         const RunConfig& run) {
  out << "{\n  \"config\": {\"duration_days\": " << run.duration_days
      << ", \"arrival_rate\": " << run.arrival_rate
      << ", \"warmup_days\": " << run.warmup_days << ", \"seed\": " << run.seed
      << ", \"shards\": " << run.shards << "},\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    out << "    {\"name\": ";
    json_escape(out, o.name);
    out << ", \"scenario_digest\": \"" << hex_digest(o.scenario_digest)
        << "\", \"trace_digest\": \"" << hex_digest(o.trace_digest)
        << "\",\n     \"events\": " << o.events
        << ", \"peers_spawned\": " << o.peers_spawned
        << ", \"outage_crashes\": " << o.outage_crashes
        << ", \"shed_connections\": " << o.shed_connections
        << ", \"shed_queries\": " << o.shed_queries
        << ",\n     \"replenish_scheduled\": " << o.replenish_scheduled
        << ", \"replenish_spawns\": " << o.replenish_spawns
        << ", \"session_ends\": [" << o.session_ends[0] << ", "
        << o.session_ends[1] << ", " << o.session_ends[2] << ", "
        << o.session_ends[3] << "]"
        << ",\n     \"final_sessions\": " << o.filters.final_sessions
        << ", \"final_queries\": " << o.filters.final_queries
        << ", \"green\": " << (o.green() ? "true" : "false")
        << ", \"violations\": [";
    for (std::size_t v = 0; v < o.violations.size(); ++v) {
      if (v > 0) out << ", ";
      json_escape(out, o.violations[v]);
    }
    out << "]}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace p2pgen::scenario
