#include "scenario/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace p2pgen::scenario {
namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& what) {
  throw JsonError("json: " + what + " at offset " + std::to_string(offset));
}

/// Single-pass recursive-descent parser over the input view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing content after document");
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail_at(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail_at(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail_at(pos_, "invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    if (++depth_ > kMaxDepth) fail_at(pos_, "nesting too deep");
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_ws();
      const std::size_t key_at = pos_;
      std::string key = parse_string();
      if (object.count(key) != 0) fail_at(key_at, "duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    if (++depth_ > kMaxDepth) fail_at(pos_, "nesting too deep");
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail_at(pos_ - 1, "invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail_at(pos_ - 1, "invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (!consume_literal("\\u")) fail_at(pos_, "lone high surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail_at(pos_ - 4, "invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail_at(pos_ - 4, "lone low surrogate");
    }
    // Encode the code point as UTF-8.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      return pos_ > before;
    };
    // RFC 8259 int grammar: a single 0, or a nonzero digit then digits —
    // "01" is malformed, not 1.
    const std::size_t int_start = pos_;
    if (!digits()) fail_at(pos_, "invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail_at(int_start, "leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail_at(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail_at(pos_, "digits required in exponent");
    }
    // std::from_chars for double is incomplete on some libstdc++ versions;
    // the token was validated above, so strtod on a NUL-terminated copy is
    // safe and locale differences don't arise for the validated grammar.
    const std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }
};

[[noreturn]] void type_error(const char* expected) {
  throw JsonError(std::string("json: value is not ") + expected);
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  if (!is_bool()) type_error("a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

const Json* Json::find(const std::string& key) const {
  const Object& object = as_object();
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace p2pgen::scenario
