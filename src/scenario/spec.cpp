#include "scenario/spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "behavior/client_profile.hpp"
#include "scenario/json.hpp"

namespace p2pgen::scenario {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("scenario spec: " + what);
}

double number_at(const Json& value, const std::string& path) {
  if (!value.is_number()) fail("\"" + path + "\" must be a number");
  return value.as_number();
}

double nonneg_at(const Json& value, const std::string& path) {
  const double v = number_at(value, path);
  if (!(v >= 0.0) || !std::isfinite(v)) {
    fail("\"" + path + "\" must be finite and >= 0");
  }
  return v;
}

std::string string_at(const Json& value, const std::string& path) {
  if (!value.is_string()) fail("\"" + path + "\" must be a string");
  return value.as_string();
}

bool bool_at(const Json& value, const std::string& path) {
  if (!value.is_bool()) fail("\"" + path + "\" must be a boolean");
  return value.as_bool();
}

std::uint64_t u64_at(const Json& value, const std::string& path) {
  const double v = number_at(value, path);
  if (!(v >= 0.0) || v != std::floor(v) || v > 1.8e19) {
    fail("\"" + path + "\" must be a nonnegative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t size_at(const Json& value, const std::string& path) {
  return static_cast<std::size_t>(u64_at(value, path));
}

int int_at(const Json& value, const std::string& path) {
  const std::uint64_t v = u64_at(value, path);
  if (v > 1u << 30) fail("\"" + path + "\" is implausibly large");
  return static_cast<int>(v);
}

/// Rejects keys outside `known` so a typoed knob never silently yields a
/// benign run.
void check_keys(const Json::Object& object, const std::string& path,
                std::initializer_list<const char*> known) {
  for (const auto& [key, value] : object) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) fail("unknown key \"" + (path.empty() ? key : path + "." + key) + "\"");
  }
}

sim::FaultConfig parse_faults(const Json& value, const std::string& path) {
  if (!value.is_object()) fail("\"" + path + "\" must be an object");
  check_keys(value.as_object(), path,
             {"loss_prob", "corrupt_prob", "duplicate_prob", "jitter_seconds",
              "crash_rate", "half_open_prob", "half_open_after_mean"});
  sim::FaultConfig faults;
  if (const Json* v = value.find("loss_prob")) faults.loss_prob = number_at(*v, path + ".loss_prob");
  if (const Json* v = value.find("corrupt_prob")) faults.corrupt_prob = number_at(*v, path + ".corrupt_prob");
  if (const Json* v = value.find("duplicate_prob")) faults.duplicate_prob = number_at(*v, path + ".duplicate_prob");
  if (const Json* v = value.find("jitter_seconds")) faults.jitter_seconds = number_at(*v, path + ".jitter_seconds");
  if (const Json* v = value.find("crash_rate")) faults.crash_rate = number_at(*v, path + ".crash_rate");
  if (const Json* v = value.find("half_open_prob")) faults.half_open_prob = number_at(*v, path + ".half_open_prob");
  if (const Json* v = value.find("half_open_after_mean")) {
    faults.half_open_after_mean = number_at(*v, path + ".half_open_after_mean");
  }
  return faults;
}

behavior::ArrivalSchedule parse_arrival_schedule(const Json& value) {
  if (!value.is_array()) fail("\"arrival_schedule\" must be an array of points");
  behavior::ArrivalSchedule schedule;
  std::size_t i = 0;
  for (const Json& entry : value.as_array()) {
    const std::string path = "arrival_schedule[" + std::to_string(i++) + "]";
    if (!entry.is_object()) fail("\"" + path + "\" must be an object");
    check_keys(entry.as_object(), path, {"at_days", "multiplier"});
    behavior::ArrivalPoint point;
    if (const Json* v = entry.find("at_days")) point.at_days = number_at(*v, path + ".at_days");
    if (const Json* v = entry.find("multiplier")) point.multiplier = number_at(*v, path + ".multiplier");
    schedule.points.push_back(point);
  }
  return schedule;
}

behavior::FaultSchedule parse_fault_schedule(const Json& value) {
  if (!value.is_array()) fail("\"fault_phases\" must be an array of phases");
  behavior::FaultSchedule schedule;
  std::size_t i = 0;
  for (const Json& entry : value.as_array()) {
    const std::string path = "fault_phases[" + std::to_string(i++) + "]";
    if (!entry.is_object()) fail("\"" + path + "\" must be an object");
    check_keys(entry.as_object(), path, {"at_days", "faults"});
    behavior::FaultPhase phase;
    if (const Json* v = entry.find("at_days")) phase.at_days = number_at(*v, path + ".at_days");
    if (const Json* v = entry.find("faults")) phase.faults = parse_faults(*v, path + ".faults");
    schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

std::vector<behavior::RegionalOutage> parse_outages(const Json& value) {
  if (!value.is_array()) fail("\"outages\" must be an array");
  std::vector<behavior::RegionalOutage> outages;
  std::size_t i = 0;
  for (const Json& entry : value.as_array()) {
    const std::string path = "outages[" + std::to_string(i++) + "]";
    if (!entry.is_object()) fail("\"" + path + "\" must be an object");
    check_keys(entry.as_object(), path,
               {"at_days", "duration_days", "region", "severity",
                "arrival_suppression"});
    behavior::RegionalOutage outage;
    if (const Json* v = entry.find("at_days")) outage.at_days = number_at(*v, path + ".at_days");
    if (const Json* v = entry.find("duration_days")) {
      outage.duration_days = number_at(*v, path + ".duration_days");
    }
    if (const Json* v = entry.find("region")) {
      outage.region = parse_region(string_at(*v, path + ".region"));
    }
    if (const Json* v = entry.find("severity")) outage.severity = number_at(*v, path + ".severity");
    if (const Json* v = entry.find("arrival_suppression")) {
      outage.arrival_suppression = number_at(*v, path + ".arrival_suppression");
    }
    outages.push_back(outage);
  }
  return outages;
}

ScenarioSpec::NodeOverrides parse_node(const Json& value) {
  if (!value.is_object()) fail("\"node\" must be an object");
  check_keys(value.as_object(), "node",
             {"max_connections", "forward_fanout", "forward_retry_max",
              "forward_retry_base", "forward_retry_max_delay", "replenish",
              "replenish_target", "replenish_backoff_base",
              "replenish_backoff_max", "max_pending_handshakes",
              "query_shed_rate", "query_shed_burst"});
  ScenarioSpec::NodeOverrides node;
  if (const Json* v = value.find("max_connections")) node.max_connections = size_at(*v, "node.max_connections");
  if (const Json* v = value.find("forward_fanout")) node.forward_fanout = int_at(*v, "node.forward_fanout");
  if (const Json* v = value.find("forward_retry_max")) node.forward_retry_max = int_at(*v, "node.forward_retry_max");
  if (const Json* v = value.find("forward_retry_base")) node.forward_retry_base = nonneg_at(*v, "node.forward_retry_base");
  if (const Json* v = value.find("forward_retry_max_delay")) {
    node.forward_retry_max_delay = nonneg_at(*v, "node.forward_retry_max_delay");
  }
  if (const Json* v = value.find("replenish")) node.replenish = bool_at(*v, "node.replenish");
  if (const Json* v = value.find("replenish_target")) node.replenish_target = size_at(*v, "node.replenish_target");
  if (const Json* v = value.find("replenish_backoff_base")) {
    node.replenish_backoff_base = nonneg_at(*v, "node.replenish_backoff_base");
  }
  if (const Json* v = value.find("replenish_backoff_max")) {
    node.replenish_backoff_max = nonneg_at(*v, "node.replenish_backoff_max");
  }
  if (const Json* v = value.find("max_pending_handshakes")) {
    node.max_pending_handshakes = size_at(*v, "node.max_pending_handshakes");
  }
  if (const Json* v = value.find("query_shed_rate")) node.query_shed_rate = nonneg_at(*v, "node.query_shed_rate");
  if (const Json* v = value.find("query_shed_burst")) node.query_shed_burst = nonneg_at(*v, "node.query_shed_burst");
  return node;
}

}  // namespace

geo::Region parse_region(const std::string& name) {
  if (name == "north_america") return geo::Region::kNorthAmerica;
  if (name == "europe") return geo::Region::kEurope;
  if (name == "asia") return geo::Region::kAsia;
  if (name == "other") return geo::Region::kOther;
  throw std::invalid_argument(
      "scenario spec: unknown region \"" + name +
      "\" (known: north_america, europe, asia, other)");
}

const char* region_json_name(geo::Region region) noexcept {
  switch (region) {
    case geo::Region::kNorthAmerica: return "north_america";
    case geo::Region::kEurope: return "europe";
    case geo::Region::kAsia: return "asia";
    case geo::Region::kOther: return "other";
  }
  return "other";
}

void ScenarioSpec::validate() const {
  if (name.empty()) fail("\"name\" must not be empty");
  if (duration_days && !(*duration_days > 0.0)) fail("\"duration_days\" must be > 0");
  if (warmup_days && !(*warmup_days >= 0.0)) fail("\"warmup_days\" must be >= 0");
  if (arrival_rate && !(*arrival_rate > 0.0)) fail("\"arrival_rate\" must be > 0");
  if (diurnal_amplitude &&
      (!(*diurnal_amplitude >= 0.0) || *diurnal_amplitude > 1.0)) {
    fail("\"diurnal_amplitude\" must be in [0, 1]");
  }
  if (client_mix) {
    bool known = false;
    for (const auto& mix : behavior::ClientPopulation::known_mixes()) {
      if (mix == *client_mix) {
        known = true;
        break;
      }
    }
    if (!known) {
      fail("unknown client_mix \"" + *client_mix + "\"");
    }
  }
  // The schedule layer's validation covers ranges and monotonicity and
  // already names the offending field.
  if (faults) behavior::validate(*faults);
  behavior::validate(fault_schedule);
  behavior::validate(arrival_schedule);
  for (const auto& outage : outages) behavior::validate(outage);
  if (node.forward_retry_max && *node.forward_retry_max < 0) {
    fail("\"node.forward_retry_max\" must be >= 0");
  }
}

behavior::TraceSimulationConfig ScenarioSpec::apply(
    behavior::TraceSimulationConfig base) const {
  validate();
  if (duration_days) base.duration_days = *duration_days;
  if (warmup_days) base.warmup_days = *warmup_days;
  if (arrival_rate) base.arrival_rate = *arrival_rate;
  if (diurnal_amplitude) base.diurnal_amplitude = *diurnal_amplitude;
  if (seed) base.seed = *seed;
  if (client_mix) base.client_mix = *client_mix;
  if (faults) base.faults = *faults;
  if (!fault_schedule.empty()) base.fault_schedule = fault_schedule;
  if (!arrival_schedule.empty()) base.arrival_schedule = arrival_schedule;
  if (!outages.empty()) base.outages = outages;

  if (node.max_connections) base.node.max_connections = *node.max_connections;
  if (node.forward_fanout) base.node.forward_fanout = *node.forward_fanout;
  if (node.forward_retry_max) base.node.forward_retry_max = *node.forward_retry_max;
  if (node.forward_retry_base) base.node.forward_retry_base = *node.forward_retry_base;
  if (node.forward_retry_max_delay) {
    base.node.forward_retry_max_delay = *node.forward_retry_max_delay;
  }
  if (node.replenish) base.node.replenish = *node.replenish;
  if (node.replenish_target) base.node.replenish_target = *node.replenish_target;
  if (node.replenish_backoff_base) {
    base.node.replenish_backoff_base = *node.replenish_backoff_base;
  }
  if (node.replenish_backoff_max) {
    base.node.replenish_backoff_max = *node.replenish_backoff_max;
  }
  if (node.max_pending_handshakes) {
    base.node.max_pending_handshakes = *node.max_pending_handshakes;
  }
  if (node.query_shed_rate) base.node.query_shed_rate = *node.query_shed_rate;
  if (node.query_shed_burst) base.node.query_shed_burst = *node.query_shed_burst;
  return base;
}

ScenarioSpec ScenarioSpec::from_json(const std::string& text) {
  const Json root = Json::parse(text);
  if (!root.is_object()) fail("document must be a JSON object");
  check_keys(root.as_object(), "",
             {"name", "description", "duration_days", "warmup_days",
              "arrival_rate", "diurnal_amplitude", "seed", "client_mix",
              "faults", "fault_phases", "arrival_schedule", "outages",
              "node"});

  ScenarioSpec spec;
  if (const Json* v = root.find("name")) spec.name = string_at(*v, "name");
  if (const Json* v = root.find("description")) spec.description = string_at(*v, "description");
  if (const Json* v = root.find("duration_days")) spec.duration_days = number_at(*v, "duration_days");
  if (const Json* v = root.find("warmup_days")) spec.warmup_days = number_at(*v, "warmup_days");
  if (const Json* v = root.find("arrival_rate")) spec.arrival_rate = number_at(*v, "arrival_rate");
  if (const Json* v = root.find("diurnal_amplitude")) {
    spec.diurnal_amplitude = number_at(*v, "diurnal_amplitude");
  }
  if (const Json* v = root.find("seed")) spec.seed = u64_at(*v, "seed");
  if (const Json* v = root.find("client_mix")) spec.client_mix = string_at(*v, "client_mix");
  if (const Json* v = root.find("faults")) spec.faults = parse_faults(*v, "faults");
  if (const Json* v = root.find("fault_phases")) spec.fault_schedule = parse_fault_schedule(*v);
  if (const Json* v = root.find("arrival_schedule")) spec.arrival_schedule = parse_arrival_schedule(*v);
  if (const Json* v = root.find("outages")) spec.outages = parse_outages(*v);
  if (const Json* v = root.find("node")) spec.node = parse_node(*v);

  spec.validate();
  return spec;
}

ScenarioSpec ScenarioSpec::from_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string(e.what()) + " (in " + path + ")");
  }
}

std::uint64_t scenario_digest(const ScenarioSpec& spec,
                              const behavior::TraceSimulationConfig& base) {
  return behavior::simulation_config_digest(spec.apply(base));
}

}  // namespace p2pgen::scenario
