// p2pgen — minimal JSON reader for scenario specs.
//
// The repo writes JSON in several places (obs snapshots, PipelineReport)
// but never needed to read any until the declarative scenario layer; this
// is the smallest strict parser that covers the spec format.  No external
// dependency, no extensions: RFC 8259 objects, arrays, strings (with the
// standard escapes; \uXXXX is decoded to UTF-8), numbers, booleans and
// null.  Errors carry the byte offset of the offending character.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace p2pgen::scenario {

/// Parse or type-access failure; `what()` names the problem and, for
/// parse errors, the byte offset.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value.  Objects keep their keys sorted (std::map), which is
/// fine for a config format and keeps iteration deterministic.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  explicit Json(std::nullptr_t) : value_(nullptr) {}
  explicit Json(bool b) : value_(b) {}
  explicit Json(double n) : value_(n) {}
  explicit Json(std::string s) : value_(std::move(s)) {}
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  /// Parses exactly one JSON document; trailing non-whitespace is an
  /// error.  Throws JsonError.
  static Json parse(std::string_view text);

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw JsonError naming the expected type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when `this` is an object without the
  /// key.  Throws JsonError when `this` is not an object.
  const Json* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace p2pgen::scenario
