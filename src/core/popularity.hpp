// p2pgen — query popularity model (paper Section 4.6).
//
// Queries are partitioned into SEVEN classes by which regions issue them:
// three region-exclusive classes, three pairwise-intersection classes, and
// one three-way intersection (Table 3 gives the class sizes).  Within a
// class, per-day popularity is Zipf-like (Figure 11); the intersection
// class has a flattened head and is fit by a two-piece Zipf.  The set of
// popular queries drifts from day to day (Figure 10), which the model
// captures with a per-day replacement probability for each rank slot.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/conditions.hpp"
#include "stats/rng.hpp"
#include "stats/zipf.hpp"

namespace p2pgen::core {

/// The seven query classes of Section 4.6.
enum class QueryClass : std::uint8_t {
  kNaOnly = 0,
  kEuOnly = 1,
  kAsiaOnly = 2,
  kNaEu = 3,
  kNaAsia = 4,
  kEuAsia = 5,
  kAll = 6,
};

inline constexpr std::size_t kQueryClassCount = 7;

constexpr std::string_view query_class_name(QueryClass c) noexcept {
  switch (c) {
    case QueryClass::kNaOnly: return "NA only";
    case QueryClass::kEuOnly: return "EU only";
    case QueryClass::kAsiaOnly: return "Asia only";
    case QueryClass::kNaEu: return "NA+EU";
    case QueryClass::kNaAsia: return "NA+Asia";
    case QueryClass::kEuAsia: return "EU+Asia";
    case QueryClass::kAll: return "NA+EU+Asia";
  }
  return "?";
}

/// True when peers from `region` may issue queries of class `c`.
constexpr bool class_visible_from(QueryClass c, Region region) noexcept {
  switch (region) {
    case Region::kNorthAmerica:
      return c == QueryClass::kNaOnly || c == QueryClass::kNaEu ||
             c == QueryClass::kNaAsia || c == QueryClass::kAll;
    case Region::kEurope:
      return c == QueryClass::kEuOnly || c == QueryClass::kNaEu ||
             c == QueryClass::kEuAsia || c == QueryClass::kAll;
    case Region::kAsia:
      return c == QueryClass::kAsiaOnly || c == QueryClass::kNaAsia ||
             c == QueryClass::kEuAsia || c == QueryClass::kAll;
    case Region::kOther:
      return c == QueryClass::kAll;
  }
  return false;
}

/// Parameters of one query class.
struct QueryClassParams {
  /// Number of distinct queries in the class per day (Table 3, 1-day
  /// column defines the defaults).
  std::size_t catalog_size = 100;

  /// Zipf-like rank distribution inside the class.  When `two_piece` is
  /// false only alpha_body is used; otherwise ranks 1..split follow
  /// alpha_body and the rest alpha_tail (Figure 11(c)).
  bool two_piece = false;
  std::size_t split = 45;
  double alpha_body = 0.386;
  double alpha_tail = 4.67;

  /// Builds the rank distribution for this class.
  stats::ZipfLike make_rank_distribution() const;
};

/// Full popularity model.
struct PopularityModel {
  std::array<QueryClassParams, kQueryClassCount> classes{};

  /// P(query class | issuing region): for each region, a distribution over
  /// the four classes visible from it (others must be zero).  The paper's
  /// §4.6 example: a North American query is NA-only with probability
  /// 0.97 and in the NA/EU intersection with probability 0.03.
  std::array<std::array<double, kQueryClassCount>, geo::kRegionCount>
      class_probability{};

  /// Per-day probability that a rank slot's query is replaced by a fresh
  /// one (hot-set drift, Figure 10).
  double daily_drift = 0.65;

  /// Validates invariants (probabilities sum to 1 over visible classes,
  /// drift in [0,1], catalogs non-empty).  Throws std::invalid_argument.
  void validate() const;

  /// Paper-calibrated defaults (Table 3 one-day class sizes, Figure 11
  /// Zipf parameters, §4.6 class probabilities).
  static PopularityModel paper_default();
};

/// Draws (class, rank) pairs and materializes the query *strings* while
/// evolving the per-day catalogs with hot-set drift.  Deterministic in the
/// seed.  Days must be accessed in non-decreasing order.
class QueryVocabulary {
 public:
  QueryVocabulary(const PopularityModel& model, std::uint64_t seed);

  /// Samples the class of a query issued from `region` (Figure 12 step
  /// (c)(ii)).
  QueryClass sample_class(Region region, stats::Rng& rng) const;

  /// Samples a rank within a class (Figure 12 step (c)(iii)).
  std::size_t sample_rank(QueryClass cls, stats::Rng& rng) const;

  /// The query string occupying `rank` of `cls` on `day` (0-based day
  /// index).  Catalog evolution is materialized lazily per day and the
  /// full history is kept, so out-of-order day access (overlapping
  /// sessions, heavy-tail query timings) always reads the correct day's
  /// catalog.
  const std::string& query_string(QueryClass cls, std::size_t rank,
                                  std::size_t day);

  /// Convenience: sample a full query for a peer in `region` on `day`.
  const std::string& sample_query(Region region, std::size_t day,
                                  stats::Rng& rng);

  /// Latest day whose catalog has been materialized.
  std::size_t current_day() const noexcept { return days_.size() - 1; }
  const PopularityModel& model() const noexcept { return model_; }

  /// Catalog evolution is capped at this many days; queries timed beyond
  /// it (heavy-tail samples far past any realistic measurement window)
  /// reuse the final catalog.  Default 400 days.
  void set_max_day(std::size_t max_day) noexcept { max_day_ = max_day; }

 private:
  /// One day's catalogs: per class, rank -> query string.
  using DayCatalogs = std::array<std::vector<std::string>, kQueryClassCount>;

  void ensure_day(std::size_t day);
  std::string fresh_query(QueryClass cls);

  PopularityModel model_;
  std::array<stats::ZipfLike, kQueryClassCount> rank_dist_;
  std::vector<DayCatalogs> days_;  // index = day, materialized lazily
  stats::Rng drift_rng_;
  std::size_t max_day_ = 400;
  std::uint64_t next_query_serial_ = 0;
};

}  // namespace p2pgen::core
