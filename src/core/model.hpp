// p2pgen — the complete IMC'04 workload model.
//
// WorkloadModel aggregates every distribution the paper's synthetic
// workload algorithm (Figure 12) draws from, with the exact conditioning
// structure Section 4 derives:
//
//   step (1) region            ~ region_mix[hour]               (Figure 1)
//   step (2) passive?          ~ passive_fraction[region]       (Figure 4)
//   step (3) passive duration  ~ passive_duration[region][period]   (A.1)
//   step (4a) #queries         ~ queries_per_session[region]        (A.2)
//   step (4b) first-query gap  ~ first_query[region][period][class] (A.3)
//   step (4c) interarrival     ~ interarrival[region][period][class](A.4)
//            query identity    ~ PopularityModel                (Table 3 / Fig 11)
//   step (4d) after-last gap   ~ after_last[region][period][class]  (A.5)
//
// paper_default() loads the parameters published in the Appendix for
// North American peers, and the region-level scalings the running text
// gives for Europe and Asia (Sections 4.4–4.5).  Where the paper prints a
// parameter table the numbers are copied verbatim; where it only
// describes the shift qualitatively ("European sessions are longer",
// "Asian peers close sessions faster") the default shifts mu by the
// quoted CCDF landmarks.  All parameters are plain data — callers can
// replace any entry, and analysis::fit_workload_model() rebuilds the
// whole structure from a measured trace.
#pragma once

#include <array>

#include "core/conditions.hpp"
#include "core/popularity.hpp"
#include "stats/distributions.hpp"

namespace p2pgen::core {

/// Per-hour region mix: fraction of connected peers from each region
/// during each hour at the measurement node (Figure 1).  Rows sum to 1.
using RegionMix = std::array<std::array<double, geo::kRegionCount>, 24>;

/// The full synthetic-workload parameter set.
struct WorkloadModel {
  RegionMix region_mix{};

  /// Fraction of sessions that issue no queries, per region (Figure 4:
  /// NA 80–85 %, EU 75–80 %, Asia 80–90 %, flat over the day).
  std::array<double, geo::kRegionCount> passive_fraction{};

  /// Table A.1 — connected session duration of passive peers, seconds.
  /// Indexed [region][period].
  std::array<std::array<stats::DistributionPtr, kDayPeriodCount>,
             geo::kRegionCount>
      passive_duration{};

  /// Table A.2 — number of queries per active session (continuous
  /// lognormal, discretized by the generator).  Indexed [region].
  std::array<stats::DistributionPtr, geo::kRegionCount> queries_per_session{};

  /// Table A.3 — time until first query, seconds.
  /// Indexed [region][period][FirstQueryClass].
  std::array<std::array<std::array<stats::DistributionPtr, kFirstQueryClassCount>,
                        kDayPeriodCount>,
             geo::kRegionCount>
      first_query{};

  /// Table A.4 — query interarrival time, seconds.
  /// Indexed [region][period][InterarrivalClass].  The paper conditions
  /// on the session's query count for European peers only (Figure 8(b));
  /// other regions replicate one distribution across the class axis.
  std::array<std::array<std::array<stats::DistributionPtr, kInterarrivalClassCount>,
                        kDayPeriodCount>,
             geo::kRegionCount>
      interarrival{};

  /// Table A.5 — time after last query, seconds.
  /// Indexed [region][period][LastQueryClass].
  std::array<std::array<std::array<stats::DistributionPtr, kLastQueryClassCount>,
                        kDayPeriodCount>,
             geo::kRegionCount>
      after_last{};

  PopularityModel popularity{};

  /// Hard cap on generated session durations, seconds.  The paper's trace
  /// contains no sessions beyond ~50 hours ("session durations between 17
  /// and 50 hours account for 1% of the sessions"), while the fitted
  /// lognormal tails are unbounded; the cap keeps the generated tail
  /// inside the physically observed range.
  double max_session_seconds = 50.0 * 3600.0;

  /// Checks that every distribution slot is populated and the region mix
  /// rows sum to ~1.  Throws std::invalid_argument on violation.
  void validate() const;

  /// The paper-published parameter set (see file comment).
  static WorkloadModel paper_default();
};

/// The Figure 1 region mix as read off the paper's curves (fractions of
/// NA / EU / Asia / other per hour at the measurement node).
RegionMix paper_region_mix();

}  // namespace p2pgen::core
