#include "core/model.hpp"

#include <stdexcept>

namespace p2pgen::core {
namespace {

using stats::DistributionPtr;
using stats::bimodal_split;
using stats::make_lognormal;
using stats::make_pareto;
using stats::make_weibull;

constexpr std::size_t idx(Region r) { return geo::region_index(r); }
constexpr std::size_t idx(DayPeriod p) { return static_cast<std::size_t>(p); }

}  // namespace

RegionMix paper_region_mix() {
  // Fractions of NA / EU / Asia / other per hour at the measurement node,
  // read off Figure 1 and the Section 4.1 anchors (75/15/5 at 00:00,
  // 80/5/5 at 03:00, 60/20/15 at 12:00; EU peaks ~20 % noon–midnight and
  // bottoms ~6 % at 06:00; Asia peaks ~13–15 % during 06:00–15:00).
  constexpr std::array<std::array<double, 3>, 24> kEuAsiaOther = {{
      // EU    Asia  Other        hour
      {0.15, 0.05, 0.05},  // 00
      {0.13, 0.05, 0.06},  // 01
      {0.10, 0.05, 0.06},  // 02
      {0.08, 0.05, 0.07},  // 03
      {0.07, 0.06, 0.07},  // 04
      {0.06, 0.07, 0.07},  // 05
      {0.06, 0.09, 0.07},  // 06
      {0.07, 0.11, 0.07},  // 07
      {0.08, 0.12, 0.07},  // 08
      {0.10, 0.13, 0.07},  // 09
      {0.12, 0.13, 0.07},  // 10
      {0.15, 0.14, 0.06},  // 11
      {0.20, 0.14, 0.06},  // 12
      {0.20, 0.13, 0.06},  // 13
      {0.20, 0.12, 0.06},  // 14
      {0.20, 0.10, 0.06},  // 15
      {0.19, 0.08, 0.06},  // 16
      {0.19, 0.07, 0.06},  // 17
      {0.19, 0.06, 0.05},  // 18
      {0.20, 0.05, 0.05},  // 19
      {0.20, 0.04, 0.05},  // 20
      {0.19, 0.04, 0.05},  // 21
      {0.18, 0.04, 0.05},  // 22
      {0.16, 0.04, 0.05},  // 23
  }};
  RegionMix mix{};
  for (int h = 0; h < 24; ++h) {
    const auto [eu, asia, other] = kEuAsiaOther[static_cast<std::size_t>(h)];
    auto& row = mix[static_cast<std::size_t>(h)];
    row[idx(Region::kEurope)] = eu;
    row[idx(Region::kAsia)] = asia;
    row[idx(Region::kOther)] = other;
    row[idx(Region::kNorthAmerica)] = 1.0 - eu - asia - other;
  }
  return mix;
}

void WorkloadModel::validate() const {
  for (int h = 0; h < 24; ++h) {
    double total = 0.0;
    for (double f : region_mix[static_cast<std::size_t>(h)]) {
      if (f < 0.0) throw std::invalid_argument("WorkloadModel: negative mix entry");
      total += f;
    }
    if (total < 0.999 || total > 1.001) {
      throw std::invalid_argument("WorkloadModel: region mix row must sum to 1");
    }
  }
  if (!(max_session_seconds > 0.0)) {
    throw std::invalid_argument("WorkloadModel: max_session_seconds must be > 0");
  }
  for (Region r : geo::kAllRegions) {
    const double pf = passive_fraction[idx(r)];
    if (!(pf >= 0.0 && pf <= 1.0)) {
      throw std::invalid_argument("WorkloadModel: passive fraction out of range");
    }
    if (!queries_per_session[idx(r)]) {
      throw std::invalid_argument("WorkloadModel: missing queries_per_session");
    }
    for (std::size_t p = 0; p < kDayPeriodCount; ++p) {
      if (!passive_duration[idx(r)][p]) {
        throw std::invalid_argument("WorkloadModel: missing passive_duration");
      }
      for (std::size_t c = 0; c < kFirstQueryClassCount; ++c) {
        if (!first_query[idx(r)][p][c]) {
          throw std::invalid_argument("WorkloadModel: missing first_query");
        }
      }
      for (std::size_t c = 0; c < kInterarrivalClassCount; ++c) {
        if (!interarrival[idx(r)][p][c]) {
          throw std::invalid_argument("WorkloadModel: missing interarrival");
        }
      }
      for (std::size_t c = 0; c < kLastQueryClassCount; ++c) {
        if (!after_last[idx(r)][p][c]) {
          throw std::invalid_argument("WorkloadModel: missing after_last");
        }
      }
    }
  }
  popularity.validate();
}

WorkloadModel WorkloadModel::paper_default() {
  WorkloadModel m;
  m.region_mix = paper_region_mix();

  // Figure 4: NA 80–85 %, EU 75–80 %, Asia 80–90 %, flat over the day.
  m.passive_fraction[idx(Region::kNorthAmerica)] = 0.825;
  m.passive_fraction[idx(Region::kEurope)] = 0.775;
  m.passive_fraction[idx(Region::kAsia)] = 0.85;
  m.passive_fraction[idx(Region::kOther)] = 0.82;

  // ---- Table A.1: passive session duration (seconds) ------------------
  // NA peak: 75 % body (<= 2 min) lognormal(2.108, 2.502); tail
  // lognormal(6.397, 2.749).  NA non-peak: 55 % body.
  // Body covers 64–120 s ("1-2 minutes"): filter rule 3 removes sessions
  // under 64 s, so the fitted body starts there.
  auto passive = [](double w, double mu_b, double s_b, double mu_t, double s_t) {
    return bimodal_split(make_lognormal(mu_b, s_b), make_lognormal(mu_t, s_t),
                         120.0, w, 64.0);
  };
  auto& pd = m.passive_duration;
  pd[idx(Region::kNorthAmerica)][idx(DayPeriod::kPeak)] =
      passive(0.75, 2.108, 2.502, 6.397, 2.749);
  pd[idx(Region::kNorthAmerica)][idx(DayPeriod::kNonPeak)] =
      passive(0.55, 2.201, 2.383, 6.817, 2.848);
  // Europe: longest sessions (Fig. 5(a): only 55 % under 2 min overall).
  pd[idx(Region::kEurope)][idx(DayPeriod::kPeak)] =
      passive(0.55, 2.30, 2.40, 6.90, 2.80);
  pd[idx(Region::kEurope)][idx(DayPeriod::kNonPeak)] =
      passive(0.40, 2.40, 2.30, 7.20, 2.90);
  // Asia: shortest sessions (85 % under 2 min).
  pd[idx(Region::kAsia)][idx(DayPeriod::kPeak)] =
      passive(0.85, 2.00, 2.50, 6.00, 2.60);
  pd[idx(Region::kAsia)][idx(DayPeriod::kNonPeak)] =
      passive(0.75, 2.10, 2.40, 6.30, 2.70);
  pd[idx(Region::kOther)][idx(DayPeriod::kPeak)] =
      pd[idx(Region::kNorthAmerica)][idx(DayPeriod::kPeak)];
  pd[idx(Region::kOther)][idx(DayPeriod::kNonPeak)] =
      pd[idx(Region::kNorthAmerica)][idx(DayPeriod::kNonPeak)];

  // ---- Table A.2: queries per active session ---------------------------
  m.queries_per_session[idx(Region::kNorthAmerica)] = make_lognormal(-0.0673, 1.360);
  m.queries_per_session[idx(Region::kEurope)] = make_lognormal(0.520, 1.306);
  m.queries_per_session[idx(Region::kAsia)] = make_lognormal(-1.029, 1.618);
  m.queries_per_session[idx(Region::kOther)] = make_lognormal(-0.0673, 1.360);

  // ---- Table A.3: time until first query (seconds) ---------------------
  // NA peak split at 45 s, non-peak split at 120 s; body weights read off
  // Figure 7 (about half the sessions issue their first query early).
  // Peak rows use body 0–45 s; non-peak rows use body 64–120 s, exactly as
  // printed in Table A.3.
  auto first = [](double w, double body_lo, double split, double alpha,
                  double lambda, double mu_t, double s_t) {
    return bimodal_split(make_weibull(alpha, lambda), make_lognormal(mu_t, s_t),
                         split, w, body_lo);
  };
  auto& fq = m.first_query;
  {
    auto& na = fq[idx(Region::kNorthAmerica)];
    na[idx(DayPeriod::kPeak)][0] =
        first(0.50, 0.0, 45.0, 1.477, 0.005252, 5.091, 2.905);
    na[idx(DayPeriod::kPeak)][1] =
        first(0.50, 0.0, 45.0, 1.261, 0.01081, 6.303, 2.045);
    na[idx(DayPeriod::kPeak)][2] =
        first(0.50, 0.0, 45.0, 0.9821, 0.02662, 6.301, 2.359);
    na[idx(DayPeriod::kNonPeak)][0] =
        first(0.55, 64.0, 120.0, 1.159, 0.01779, 5.144, 3.384);
    na[idx(DayPeriod::kNonPeak)][1] =
        first(0.55, 64.0, 120.0, 1.207, 0.01446, 6.400, 2.324);
    na[idx(DayPeriod::kNonPeak)][2] =
        first(0.55, 64.0, 120.0, 0.9351, 0.03380, 7.186, 2.463);
    // Figure 7(a): Europe tracks North America closely.
    fq[idx(Region::kEurope)] = na;
    fq[idx(Region::kOther)] = na;
  }
  {
    // Asia: 90 % of first queries fall within 30–90 s (Figure 7(a)) —
    // a steep Weibull body with high weight and a light tail.
    auto& as = fq[idx(Region::kAsia)];
    for (std::size_t c = 0; c < kFirstQueryClassCount; ++c) {
      as[idx(DayPeriod::kPeak)][c] =
          first(0.90, 0.0, 90.0, 1.80, 0.0009, 4.80, 1.80);
      as[idx(DayPeriod::kNonPeak)][c] =
          first(0.88, 0.0, 120.0, 1.60, 0.0015, 5.00, 1.90);
    }
  }

  // ---- Table A.4: query interarrival time (seconds) --------------------
  // NA peak: lognormal(3.353, 1.625) body below 103 s, Pareto(0.9041, 103)
  // tail.  Non-peak: lognormal(2.933, 1.410) body, Pareto(1.143, 103) tail.
  auto inter = [](double w, double mu_b, double s_b, double tail_alpha) {
    return bimodal_split(make_lognormal(mu_b, s_b), make_pareto(tail_alpha, 103.0),
                         103.0, w);
  };
  auto& ia = m.interarrival;
  {
    auto& na = ia[idx(Region::kNorthAmerica)];
    // Figure 8(a): ~70 % of NA interarrivals below 100 s; no conditioning
    // on the query count for NA (Section 4.5) — replicate across classes.
    for (std::size_t c = 0; c < kInterarrivalClassCount; ++c) {
      na[idx(DayPeriod::kPeak)][c] = inter(0.68, 3.353, 1.625, 0.9041);
      na[idx(DayPeriod::kNonPeak)][c] = inter(0.76, 2.933, 1.410, 1.143);
    }
    ia[idx(Region::kOther)] = na;
  }
  {
    // Europe: 90 % below 100 s, and conditioned on the session's query
    // count — many-query sessions have shorter gaps (Figure 8(b)).
    auto& eu = ia[idx(Region::kEurope)];
    eu[idx(DayPeriod::kPeak)][static_cast<std::size_t>(InterarrivalClass::kTwo)] =
        inter(0.82, 3.40, 1.55, 1.05);
    eu[idx(DayPeriod::kPeak)]
      [static_cast<std::size_t>(InterarrivalClass::kThreeToSeven)] =
        inter(0.87, 3.05, 1.50, 1.10);
    eu[idx(DayPeriod::kPeak)]
      [static_cast<std::size_t>(InterarrivalClass::kMoreThanSeven)] =
        inter(0.91, 2.70, 1.45, 1.20);
    eu[idx(DayPeriod::kNonPeak)][static_cast<std::size_t>(InterarrivalClass::kTwo)] =
        inter(0.90, 3.10, 1.45, 1.25);
    eu[idx(DayPeriod::kNonPeak)]
      [static_cast<std::size_t>(InterarrivalClass::kThreeToSeven)] =
        inter(0.94, 2.85, 1.40, 1.30);
    eu[idx(DayPeriod::kNonPeak)]
      [static_cast<std::size_t>(InterarrivalClass::kMoreThanSeven)] =
        inter(0.96, 2.55, 1.35, 1.40);
  }
  {
    // Asia: ~80 % below 100 s (Figure 8(a)); no query-count conditioning.
    auto& as = ia[idx(Region::kAsia)];
    for (std::size_t c = 0; c < kInterarrivalClassCount; ++c) {
      as[idx(DayPeriod::kPeak)][c] = inter(0.78, 3.20, 1.55, 1.00);
      as[idx(DayPeriod::kNonPeak)][c] = inter(0.85, 2.95, 1.45, 1.20);
    }
  }

  // ---- Table A.5: time after last query (seconds) ----------------------
  auto& al = m.after_last;
  {
    auto& na = al[idx(Region::kNorthAmerica)];
    na[idx(DayPeriod::kPeak)][0] = make_lognormal(4.879, 2.361);
    na[idx(DayPeriod::kPeak)][1] = make_lognormal(5.686, 2.259);
    na[idx(DayPeriod::kPeak)][2] = make_lognormal(6.107, 2.145);
    na[idx(DayPeriod::kNonPeak)][0] = make_lognormal(4.760, 2.162);
    na[idx(DayPeriod::kNonPeak)][1] = make_lognormal(5.672, 2.156);
    na[idx(DayPeriod::kNonPeak)][2] = make_lognormal(6.036, 2.286);
    // Figure 9(a): Europe tracks North America.
    al[idx(Region::kEurope)] = na;
    al[idx(Region::kOther)] = na;
  }
  {
    // Asia closes sessions faster (Figure 9(a): 10 % above 1000 s vs 20 %).
    auto& as = al[idx(Region::kAsia)];
    as[idx(DayPeriod::kPeak)][0] = make_lognormal(4.20, 2.20);
    as[idx(DayPeriod::kPeak)][1] = make_lognormal(5.00, 2.20);
    as[idx(DayPeriod::kPeak)][2] = make_lognormal(5.40, 2.20);
    as[idx(DayPeriod::kNonPeak)][0] = make_lognormal(4.10, 2.10);
    as[idx(DayPeriod::kNonPeak)][1] = make_lognormal(4.90, 2.10);
    as[idx(DayPeriod::kNonPeak)][2] = make_lognormal(5.30, 2.10);
  }

  m.popularity = PopularityModel::paper_default();
  m.validate();
  return m;
}

}  // namespace p2pgen::core
