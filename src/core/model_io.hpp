// p2pgen — workload model (de)serialization.
//
// A line-oriented text format so fitted models can be saved, diffed,
// versioned, and shipped to other simulators:
//
//   p2pgen-model v1
//   # comments and blank lines are ignored
//   max_session_seconds 180000
//   region_mix <hour> <na> <eu> <asia> <other>
//   passive_fraction <na> <eu> <asia> <other>
//   passive_duration <region> <period> <distribution spec>
//   queries_per_session <region> <distribution spec>
//   first_query <region> <period> <class> <distribution spec>
//   interarrival <region> <period> <class> <distribution spec>
//   after_last <region> <period> <class> <distribution spec>
//   popularity_drift <p>
//   popularity_class <class> <size> <two_piece> <split> <a_body> <a_tail>
//   popularity_prob <region> <7 class probabilities>
//
// Distribution specs use the stats::parse_distribution grammar (which is
// Distribution::name()'s output).  Region/period/class fields are the
// enum integer values.  load_model validates the result.
#pragma once

#include <iosfwd>
#include <string>

#include "core/model.hpp"

namespace p2pgen::core {

/// Writes the model in the format above.  Throws on stream failure.
void save_model(const WorkloadModel& model, std::ostream& out);

/// Parses a model.  Starts from paper_default() and overrides every field
/// present in the stream, so partial files are valid; the result is
/// validate()d.  Throws std::runtime_error with a line number on errors.
WorkloadModel load_model(std::istream& in);

/// File-path conveniences.
void save_model_file(const WorkloadModel& model, const std::string& path);
WorkloadModel load_model_file(const std::string& path);

}  // namespace p2pgen::core
