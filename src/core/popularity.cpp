#include "core/popularity.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace p2pgen::core {
namespace {

/// Deterministically renders a serial number as a pronounceable pseudo-word
/// so synthetic query strings look like keyword searches, e.g. "rokatu".
std::string pseudo_word(std::uint64_t serial) {
  static constexpr std::string_view kSyllables[] = {
      "ba", "ke", "ro", "mi", "ta", "lu", "so", "ne", "vi", "da",
      "po", "zu", "fa", "ri", "go", "he", "wa", "ju", "ce", "ny"};
  constexpr std::uint64_t kBase = std::size(kSyllables);
  std::string word;
  std::uint64_t v = serial;
  do {
    word += kSyllables[v % kBase];
    v /= kBase;
  } while (v != 0);
  return word;
}

}  // namespace

stats::ZipfLike QueryClassParams::make_rank_distribution() const {
  if (catalog_size == 0) {
    throw std::invalid_argument("QueryClassParams: empty catalog");
  }
  if (two_piece && split > 0 && split < catalog_size) {
    return stats::ZipfLike::two_piece(catalog_size, split, alpha_body, alpha_tail);
  }
  return stats::ZipfLike::single(catalog_size, alpha_body);
}

void PopularityModel::validate() const {
  if (!(daily_drift >= 0.0 && daily_drift <= 1.0)) {
    throw std::invalid_argument("PopularityModel: drift must be in [0,1]");
  }
  for (const auto& params : classes) {
    if (params.catalog_size == 0) {
      throw std::invalid_argument("PopularityModel: empty class catalog");
    }
  }
  for (Region region : geo::kAllRegions) {
    double total = 0.0;
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      const double p = class_probability[geo::region_index(region)][c];
      if (p < 0.0) {
        throw std::invalid_argument("PopularityModel: negative class probability");
      }
      if (p > 0.0 && !class_visible_from(static_cast<QueryClass>(c), region)) {
        throw std::invalid_argument(
            "PopularityModel: class not visible from region has probability > 0");
      }
      total += p;
    }
    if (total < 0.999 || total > 1.001) {
      throw std::invalid_argument(
          "PopularityModel: class probabilities must sum to 1 per region");
    }
  }
}

PopularityModel PopularityModel::paper_default() {
  PopularityModel m;
  auto& cls = m.classes;

  // Catalog sizes from Table 3's one-day column, reduced to exclusive
  // classes by inclusion-exclusion:
  //   NA distinct 1990, EU 1934, Asia 153, NA∩EU 56, NA∩Asia 5,
  //   EU∩Asia 5, all three 2.
  cls[static_cast<std::size_t>(QueryClass::kNaOnly)] = {1931, false, 0, 0.386, 0.0};
  cls[static_cast<std::size_t>(QueryClass::kEuOnly)] = {1875, false, 0, 0.223, 0.0};
  cls[static_cast<std::size_t>(QueryClass::kAsiaOnly)] = {145, false, 0, 0.30, 0.0};
  // Figure 11(c): two-piece Zipf with alpha_body = 0.453 (ranks 1..45) and
  // alpha_tail = 4.67 (ranks 46..100) for the NA/EU intersection.
  cls[static_cast<std::size_t>(QueryClass::kNaEu)] = {54, true, 45, 0.453, 4.67};
  cls[static_cast<std::size_t>(QueryClass::kNaAsia)] = {3, false, 0, 0.40, 0.0};
  cls[static_cast<std::size_t>(QueryClass::kEuAsia)] = {3, false, 0, 0.40, 0.0};
  cls[static_cast<std::size_t>(QueryClass::kAll)] = {2, false, 0, 0.40, 0.0};

  auto set_prob = [&m](Region region, QueryClass c, double p) {
    m.class_probability[geo::region_index(region)][static_cast<std::size_t>(c)] = p;
  };
  // Section 4.6: "For North American peers, a query is in the set of North
  // American queries with a probability of 0.97, and with probability 0.03
  // in the intersection set" — refined over the four visible classes using
  // the Table 3 size ratios.
  set_prob(Region::kNorthAmerica, QueryClass::kNaOnly, 0.968);
  set_prob(Region::kNorthAmerica, QueryClass::kNaEu, 0.027);
  set_prob(Region::kNorthAmerica, QueryClass::kNaAsia, 0.003);
  set_prob(Region::kNorthAmerica, QueryClass::kAll, 0.002);

  set_prob(Region::kEurope, QueryClass::kEuOnly, 0.966);
  set_prob(Region::kEurope, QueryClass::kNaEu, 0.029);
  set_prob(Region::kEurope, QueryClass::kEuAsia, 0.003);
  set_prob(Region::kEurope, QueryClass::kAll, 0.002);

  set_prob(Region::kAsia, QueryClass::kAsiaOnly, 0.921);
  set_prob(Region::kAsia, QueryClass::kNaAsia, 0.033);
  set_prob(Region::kAsia, QueryClass::kEuAsia, 0.033);
  set_prob(Region::kAsia, QueryClass::kAll, 0.013);

  set_prob(Region::kOther, QueryClass::kAll, 1.0);

  m.daily_drift = 0.65;
  m.validate();
  return m;
}

QueryVocabulary::QueryVocabulary(const PopularityModel& model, std::uint64_t seed)
    : model_(model),
      rank_dist_{stats::ZipfLike::single(1, 0.0), stats::ZipfLike::single(1, 0.0),
                 stats::ZipfLike::single(1, 0.0), stats::ZipfLike::single(1, 0.0),
                 stats::ZipfLike::single(1, 0.0), stats::ZipfLike::single(1, 0.0),
                 stats::ZipfLike::single(1, 0.0)},
      drift_rng_(seed) {
  model_.validate();
  DayCatalogs day0;
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    rank_dist_[c] = model_.classes[c].make_rank_distribution();
    auto& catalog = day0[c];
    catalog.reserve(model_.classes[c].catalog_size);
    for (std::size_t r = 0; r < model_.classes[c].catalog_size; ++r) {
      catalog.push_back(fresh_query(static_cast<QueryClass>(c)));
    }
  }
  days_.push_back(std::move(day0));
}

std::string QueryVocabulary::fresh_query(QueryClass cls) {
  // Two pseudo-words plus a class-scoped serial word: unique forever, and
  // canonical_keywords() leaves these strings unchanged modulo word order.
  const std::uint64_t serial = next_query_serial_++;
  std::ostringstream os;
  os << pseudo_word(serial * 2654435761ULL % 2000003ULL) << ' '
     << pseudo_word(serial) << static_cast<int>(cls);
  return os.str();
}

QueryClass QueryVocabulary::sample_class(Region region, stats::Rng& rng) const {
  const auto& probs = model_.class_probability[geo::region_index(region)];
  double u = rng.uniform();
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    u -= probs[c];
    if (u < 0.0) return static_cast<QueryClass>(c);
  }
  // Rounding fallthrough: return the last visible class.
  for (std::size_t c = kQueryClassCount; c-- > 0;) {
    if (probs[c] > 0.0) return static_cast<QueryClass>(c);
  }
  return QueryClass::kAll;
}

std::size_t QueryVocabulary::sample_rank(QueryClass cls, stats::Rng& rng) const {
  return rank_dist_[static_cast<std::size_t>(cls)].sample(rng);
}

void QueryVocabulary::ensure_day(std::size_t day) {
  // Days beyond max_day_ (heavy-tail timing outliers) reuse the final
  // catalog; all earlier days stay accessible so out-of-order lookups
  // read the right snapshot.
  day = std::min(day, max_day_);
  while (days_.size() <= day) {
    // Hot-set drift: every rank slot independently re-draws a fresh query
    // with probability daily_drift (Figure 10).
    DayCatalogs next = days_.back();
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      for (auto& slot : next[c]) {
        if (drift_rng_.bernoulli(model_.daily_drift)) {
          slot = fresh_query(static_cast<QueryClass>(c));
        }
      }
    }
    days_.push_back(std::move(next));
  }
}

const std::string& QueryVocabulary::query_string(QueryClass cls, std::size_t rank,
                                                 std::size_t day) {
  ensure_day(day);
  const auto& catalog =
      days_[std::min(day, days_.size() - 1)][static_cast<std::size_t>(cls)];
  if (rank == 0 || rank > catalog.size()) {
    throw std::out_of_range("QueryVocabulary: rank out of range");
  }
  return catalog[rank - 1];
}

const std::string& QueryVocabulary::sample_query(Region region, std::size_t day,
                                                 stats::Rng& rng) {
  const QueryClass cls = sample_class(region, rng);
  const std::size_t rank = sample_rank(cls, rng);
  return query_string(cls, rank, day);
}

}  // namespace p2pgen::core
