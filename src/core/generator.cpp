#include "core/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/simulator.hpp"

namespace p2pgen::core {
namespace {

constexpr std::size_t idx(Region r) { return geo::region_index(r); }
constexpr std::size_t idx(DayPeriod p) { return static_cast<std::size_t>(p); }

DayPeriod period_at(Region region, double t) {
  return day_period(region, sim::hour_of_day(t));
}

std::size_t day_at(double t) {
  return t <= 0.0 ? 0 : static_cast<std::size_t>(sim::day_index(t));
}

}  // namespace

SessionSampler::SessionSampler(WorkloadModel model, std::uint64_t seed)
    : model_(std::move(model)), vocabulary_(model_.popularity, seed) {
  model_.validate();
}

Region SessionSampler::sample_region(double t, stats::Rng& rng) const {
  const auto hour = static_cast<std::size_t>(sim::hour_of_day(t));
  const auto& row = model_.region_mix[hour];
  double u = rng.uniform();
  for (Region r : geo::kAllRegions) {
    u -= row[idx(r)];
    if (u < 0.0) return r;
  }
  return Region::kOther;
}

bool SessionSampler::sample_passive(Region region, stats::Rng& rng) const {
  return rng.bernoulli(model_.passive_fraction[idx(region)]);
}

std::size_t SessionSampler::sample_query_count(Region region,
                                               stats::Rng& rng) const {
  const double x = model_.queries_per_session[idx(region)]->sample(rng);
  const auto n = static_cast<long long>(std::llround(x));
  return n < 1 ? 1u : static_cast<std::size_t>(n);
}

GeneratedSession SessionSampler::sample_session(double start, stats::Rng& rng) {
  return sample_session_in_region(start, sample_region(start, rng), rng);
}

GeneratedSession SessionSampler::sample_session_in_region(double start,
                                                          Region region,
                                                          stats::Rng& rng) {
  GeneratedSession session;
  session.start = start;
  session.region = region;
  session.passive = sample_passive(region, rng);

  const DayPeriod start_period = period_at(region, start);

  const double cap = model_.max_session_seconds;

  if (session.passive) {
    // Step (3): connected session length conditioned on time of day.
    session.duration = std::min(
        model_.passive_duration[idx(region)][idx(start_period)]->sample(rng),
        cap);
    return session;
  }

  // Step (4a): number of queries conditioned on region.
  const std::size_t n = sample_query_count(region, rng);
  session.queries.reserve(n);

  // Step (4b): time until first query conditioned on #queries and period.
  const auto fqc = static_cast<std::size_t>(first_query_class(n));
  session.first_query_delay =
      model_.first_query[idx(region)][idx(start_period)][fqc]->sample(rng);

  session.first_query_delay = std::min(session.first_query_delay, cap * 0.5);
  double t = start + session.first_query_delay;
  const auto iac = static_cast<std::size_t>(interarrival_class(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // Step (4c)(i): interarrival conditioned on the period of the
      // current query and (for regions that need it) the #queries class.
      const DayPeriod period = period_at(region, t);
      t += model_.interarrival[idx(region)][idx(period)][iac]->sample(rng);
      if (t - start >= cap) break;  // session duration cap reached
    }
    // Steps (4c)(ii)+(iii): query class, then rank within the class.
    GeneratedQuery query;
    query.time = t;
    query.query_class = vocabulary_.sample_class(region, rng);
    query.rank = vocabulary_.sample_rank(query.query_class, rng);
    query.text = vocabulary_.query_string(query.query_class, query.rank, day_at(t));
    session.queries.push_back(std::move(query));
  }

  // Step (4d): time after last query conditioned on #queries and period.
  const double last_time = session.queries.back().time;
  const DayPeriod last_period = period_at(region, last_time);
  const auto lqc =
      static_cast<std::size_t>(last_query_class(session.queries.size()));
  session.after_last_delay = std::min(
      model_.after_last[idx(region)][idx(last_period)][lqc]->sample(rng),
      std::max(1.0, cap - (last_time - start)));
  session.duration = (last_time - start) + session.after_last_delay;
  return session;
}

WorkloadGenerator::WorkloadGenerator(WorkloadModel model, Config config)
    : sampler_(std::move(model), config.seed ^ 0x5eed5eed5eed5eedULL),
      config_(config),
      rng_(config.seed) {
  if (config_.num_peers == 0) {
    throw std::invalid_argument("WorkloadGenerator: num_peers must be > 0");
  }
  if (!(config_.duration > 0.0)) {
    throw std::invalid_argument("WorkloadGenerator: duration must be > 0");
  }
  if (config_.warmup_stagger < 0.0) {
    throw std::invalid_argument("WorkloadGenerator: negative warmup_stagger");
  }
}

std::size_t WorkloadGenerator::generate(
    const std::function<void(const GeneratedSession&)>& emit) {
  if (!emit) throw std::invalid_argument("WorkloadGenerator: null emit callback");

  // Min-heap of (next arrival time, slot): sessions come out in globally
  // non-decreasing start order, which keeps vocabulary drift monotone.
  using Arrival = std::pair<double, std::uint64_t>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  for (std::uint64_t slot = 0; slot < config_.num_peers; ++slot) {
    arrivals.push({config_.start_time + rng_.uniform(0.0, config_.warmup_stagger),
                   slot});
  }

  const double horizon = config_.start_time + config_.duration;
  std::size_t emitted = 0;
  while (!arrivals.empty()) {
    const auto [start, slot] = arrivals.top();
    if (start >= horizon) break;
    arrivals.pop();
    GeneratedSession session = sampler_.sample_session(start, rng_);
    session.slot = slot;
    // The departing peer is replaced by a fresh peer immediately
    // (steady-state assumption of Section 4.7).
    arrivals.push({session.end(), slot});
    emit(session);
    ++emitted;
  }
  return emitted;
}

std::vector<GeneratedSession> WorkloadGenerator::generate_all() {
  std::vector<GeneratedSession> sessions;
  generate([&sessions](const GeneratedSession& s) { sessions.push_back(s); });
  return sessions;
}

}  // namespace p2pgen::core
