// p2pgen — conditioning taxonomy of the IMC'04 workload model.
//
// The paper captures correlations by *conditioning* each workload measure
// on a small set of discrete factors (Section 4):
//   * geographic region (North America / Europe / Asia),
//   * time of day, reduced to peak vs non-peak hours per region (§4.2
//     identifies the key periods 03:00–04:00, 11:00–12:00, 13:00–14:00,
//     19:00–20:00 at the measurement node),
//   * the session's query count, bucketed differently per measure:
//     Table A.3 uses {<3, =3, >3}, Table A.5 uses {1, 2–7, >7}, and the
//     European interarrival conditioning of Figure 8(b) uses {=2, 3–7, >7}.
// This header defines those factors and the bucketing functions.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "geo/region.hpp"

namespace p2pgen::core {

using geo::Region;

/// Peak vs non-peak classification of an hour for a region.
enum class DayPeriod : std::uint8_t { kPeak = 0, kNonPeak = 1 };

inline constexpr std::size_t kDayPeriodCount = 2;

constexpr std::string_view day_period_name(DayPeriod p) noexcept {
  return p == DayPeriod::kPeak ? "peak" : "non-peak";
}

/// The four key one-hour periods of Section 4.2, in measurement-node local
/// time.  The figures' per-period CCDFs ((b)/(c) panels of Figures 5–9)
/// are computed over sessions/queries falling in these windows.
struct KeyPeriod {
  int start_hour;  // period covers [start_hour, start_hour + 1)
  std::string_view label;
};

inline constexpr std::array<KeyPeriod, 4> kKeyPeriods = {{
    {3, "03:00-04:00"},   // peak North America, sink Europe
    {11, "11:00-12:00"},  // sink North America, peak Europe
    {13, "13:00-14:00"},  // sink NA, peak Europe, peak Asia
    {19, "19:00-20:00"},  // joint peak North America + Europe
}};

/// Peak-hours classification per region, in measurement-node local hours.
/// Derived from the load curves of Figure 3: a region is "in peak" while
/// its local time is afternoon/evening.  With the region offsets of
/// region.hpp this yields (at the measurement node):
///   North America (UTC-7 rel.): peak 19:00–07:00
///   Europe:                      peak 12:00–24:00
///   Asia (+7 rel.):              peak 05:00–17:00
constexpr DayPeriod day_period(Region region, int hour_at_node) noexcept {
  const int h = ((hour_at_node % 24) + 24) % 24;
  switch (region) {
    case Region::kNorthAmerica:
      return (h >= 19 || h < 7) ? DayPeriod::kPeak : DayPeriod::kNonPeak;
    case Region::kEurope:
      return (h >= 12) ? DayPeriod::kPeak : DayPeriod::kNonPeak;
    case Region::kAsia:
      return (h >= 5 && h < 17) ? DayPeriod::kPeak : DayPeriod::kNonPeak;
    case Region::kOther:
      return (h >= 12) ? DayPeriod::kPeak : DayPeriod::kNonPeak;
  }
  return DayPeriod::kNonPeak;
}

/// Query-count bucket for the time-until-first-query model (Table A.3).
enum class FirstQueryClass : std::uint8_t {
  kFewerThanThree = 0,
  kExactlyThree = 1,
  kMoreThanThree = 2,
};

inline constexpr std::size_t kFirstQueryClassCount = 3;

constexpr FirstQueryClass first_query_class(std::size_t queries) noexcept {
  if (queries < 3) return FirstQueryClass::kFewerThanThree;
  if (queries == 3) return FirstQueryClass::kExactlyThree;
  return FirstQueryClass::kMoreThanThree;
}

constexpr std::string_view first_query_class_name(FirstQueryClass c) noexcept {
  switch (c) {
    case FirstQueryClass::kFewerThanThree: return "< 3 queries";
    case FirstQueryClass::kExactlyThree: return "= 3 queries";
    case FirstQueryClass::kMoreThanThree: return "> 3 queries";
  }
  return "?";
}

/// Query-count bucket for the time-after-last-query model (Table A.5).
enum class LastQueryClass : std::uint8_t {
  kOne = 0,
  kTwoToSeven = 1,
  kMoreThanSeven = 2,
};

inline constexpr std::size_t kLastQueryClassCount = 3;

constexpr LastQueryClass last_query_class(std::size_t queries) noexcept {
  if (queries <= 1) return LastQueryClass::kOne;
  if (queries <= 7) return LastQueryClass::kTwoToSeven;
  return LastQueryClass::kMoreThanSeven;
}

constexpr std::string_view last_query_class_name(LastQueryClass c) noexcept {
  switch (c) {
    case LastQueryClass::kOne: return "1 query";
    case LastQueryClass::kTwoToSeven: return "2-7 queries";
    case LastQueryClass::kMoreThanSeven: return "> 7 queries";
  }
  return "?";
}

/// Query-count bucket for the European interarrival conditioning
/// (Figure 8(b): sessions with exactly 2, 3–7, > 7 queries).
enum class InterarrivalClass : std::uint8_t {
  kTwo = 0,
  kThreeToSeven = 1,
  kMoreThanSeven = 2,
};

inline constexpr std::size_t kInterarrivalClassCount = 3;

constexpr InterarrivalClass interarrival_class(std::size_t queries) noexcept {
  if (queries <= 2) return InterarrivalClass::kTwo;
  if (queries <= 7) return InterarrivalClass::kThreeToSeven;
  return InterarrivalClass::kMoreThanSeven;
}

constexpr std::string_view interarrival_class_name(InterarrivalClass c) noexcept {
  switch (c) {
    case InterarrivalClass::kTwo: return "= 2 queries";
    case InterarrivalClass::kThreeToSeven: return "3-7 queries";
    case InterarrivalClass::kMoreThanSeven: return "> 7 queries";
  }
  return "?";
}

}  // namespace p2pgen::core
