// p2pgen — synthetic workload generator (paper Figure 12).
//
// Implements the paper's algorithm for generating a P2P file-sharing
// workload: a steady-state population of N peer slots; whenever a slot's
// session finishes, a new peer takes its place.  Each session runs the
// Figure 12 recipe:
//
//   (1) region        conditioned on time of day         (Figure 1)
//   (2) passive?      conditioned on region              (Figure 4)
//   (3) passive:  session duration ~ Table A.1
//   (4) active:   #queries        ~ Table A.2 (region)
//                 time to 1st     ~ Table A.3 (period, #queries class)
//                 per query: gap  ~ Table A.4 (period[, #queries class])
//                            text ~ query class (Table 3) + Zipf rank
//                                   (Figure 11) + hot-set drift (Fig. 10)
//                 time after last ~ Table A.5 (period, #queries class)
//
// SessionSampler is the single-session primitive (also used by the trace
// simulator as ground-truth user behavior); WorkloadGenerator drives the
// steady-state population and emits sessions in start-time order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/model.hpp"
#include "stats/rng.hpp"

namespace p2pgen::core {

/// One generated query.
struct GeneratedQuery {
  double time = 0.0;  // absolute seconds since workload start
  QueryClass query_class = QueryClass::kAll;
  std::size_t rank = 1;
  std::string text;
};

/// One generated peer session.
struct GeneratedSession {
  std::uint64_t slot = 0;  // which steady-state peer slot produced it
  double start = 0.0;      // absolute seconds
  double duration = 0.0;   // connected session duration, seconds
  Region region = Region::kNorthAmerica;
  bool passive = true;
  double first_query_delay = 0.0;  // active sessions only
  double after_last_delay = 0.0;   // active sessions only
  std::vector<GeneratedQuery> queries;

  double end() const noexcept { return start + duration; }
};

/// Samples individual sessions per Figure 12 steps (1)–(4).
class SessionSampler {
 public:
  /// Copies the model; `seed` derives the vocabulary's drift stream.
  SessionSampler(WorkloadModel model, std::uint64_t seed);

  /// Step (1): region of a peer arriving at absolute time `t`.
  Region sample_region(double t, stats::Rng& rng) const;

  /// Step (2): passive with the region's probability.
  bool sample_passive(Region region, stats::Rng& rng) const;

  /// Step (4a): number of queries in an active session (>= 1).
  std::size_t sample_query_count(Region region, stats::Rng& rng) const;

  /// Full session (steps 1–4) for a peer arriving at `start`.
  GeneratedSession sample_session(double start, stats::Rng& rng);

  /// Like sample_session but with the region fixed by the caller.
  GeneratedSession sample_session_in_region(double start, Region region,
                                            stats::Rng& rng);

  const WorkloadModel& model() const noexcept { return model_; }
  QueryVocabulary& vocabulary() noexcept { return vocabulary_; }

 private:
  WorkloadModel model_;
  QueryVocabulary vocabulary_;
};

/// Steady-state workload generator.
class WorkloadGenerator {
 public:
  struct Config {
    std::size_t num_peers = 500;    // steady-state population N
    double start_time = 0.0;        // absolute start (defines time of day)
    double duration = 86400.0;      // generate sessions starting in
                                    // [start_time, start_time + duration)
    double warmup_stagger = 600.0;  // initial slot arrival spread, seconds
    std::uint64_t seed = 42;
  };

  WorkloadGenerator(WorkloadModel model, Config config);

  /// Generates sessions in globally non-decreasing start order, invoking
  /// `emit` for each.  Returns the number of sessions emitted.
  std::size_t generate(const std::function<void(const GeneratedSession&)>& emit);

  /// Convenience: collect everything (memory-heavy for large configs).
  std::vector<GeneratedSession> generate_all();

  SessionSampler& sampler() noexcept { return sampler_; }

 private:
  SessionSampler sampler_;
  Config config_;
  stats::Rng rng_;
};

}  // namespace p2pgen::core
