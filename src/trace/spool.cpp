#include "trace/spool.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace p2pgen::trace {
namespace {

namespace fs = std::filesystem;

constexpr char kSpoolMagic[4] = {'P', '2', 'P', 'S'};
constexpr std::uint32_t kSpoolVersion = 1;
constexpr std::uint64_t kHeaderBytes = sizeof(kSpoolMagic) + sizeof(std::uint32_t);
/// Frames above this payload size are corruption, not data: a trace
/// record is a few dozen bytes plus a query string capped at 1 MiB.
constexpr std::uint32_t kMaxPayload = 1u << 24;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06zu.p2ps", index);
  return buf;
}

/// Index encoded in a segment filename ("seg-NNNNNN.p2ps").
bool parse_segment_index(const std::string& name, std::size_t& index) {
  if (name.rfind("seg-", 0) != 0) return false;
  const auto dot = name.find(".p2ps");
  if (dot == std::string::npos || dot + 5 != name.size()) return false;
  const std::string digits = name.substr(4, dot - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  index = static_cast<std::size_t>(std::stoull(digits));
  return true;
}

void fsync_directory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

/// One segment's scan outcome.
struct SegmentScan {
  std::uint64_t records = 0;
  std::uint64_t valid_end = 0;  ///< bytes of valid header + frames
  std::uint64_t file_size = 0;
  std::uint64_t first_bad_offset = 0;
  bool torn = false;
};

/// Validates `path` frame by frame, feeding valid payloads to
/// `on_payload` (may be null) and updating `digest`.
SegmentScan scan_segment(const std::string& path, std::uint64_t& digest,
                         const std::function<void(const std::uint8_t*,
                                                  std::size_t)>& on_payload) {
  SegmentScan out;
  out.file_size = static_cast<std::uint64_t>(fs::file_size(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("spool: cannot open " + path);

  char magic[4];
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) == sizeof(magic)) {
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
  }
  if (static_cast<std::size_t>(in.gcount()) != sizeof(version) ||
      std::memcmp(magic, kSpoolMagic, sizeof(magic)) != 0 ||
      version == 0 || version > kSpoolVersion) {
    // Torn or foreign header: nothing in this file is trustworthy.
    out.torn = true;
    out.first_bad_offset = 0;
    out.valid_end = 0;
    return out;
  }

  std::uint64_t pos = kHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (true) {
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    const auto len_got = static_cast<std::size_t>(in.gcount());
    if (len_got == 0) break;  // clean end on a frame boundary
    if (len_got < sizeof(len) || len > kMaxPayload) {
      out.torn = true;
      break;
    }
    std::uint32_t crc = 0;
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (static_cast<std::size_t>(in.gcount()) < sizeof(crc)) {
      out.torn = true;
      break;
    }
    payload.resize(len);
    if (len > 0) {
      in.read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(len));
    }
    if (static_cast<std::size_t>(in.gcount()) < len) {
      out.torn = true;
      break;
    }
    if (crc32(payload.data(), payload.size()) != crc) {
      out.torn = true;
      break;
    }
    pos += sizeof(len) + sizeof(crc) + len;
    ++out.records;
    digest = fnv1a_update(digest, payload.data(), payload.size());
    if (on_payload) on_payload(payload.data(), payload.size());
  }
  out.valid_end = pos;
  if (out.torn) out.first_bad_offset = pos;
  return out;
}

SpoolScan scan_spool_impl(const std::string& dir, bool truncate_tail,
                          const std::function<void(const std::uint8_t*,
                                                   std::size_t)>& on_payload) {
  fs::create_directories(dir);

  std::vector<std::pair<std::size_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::size_t index = 0;
    if (parse_segment_index(entry.path().filename().string(), index)) {
      segments.emplace_back(index, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());

  SpoolScan scan;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i].second;
    const SegmentScan seg = scan_segment(path, scan.payload_digest, on_payload);
    ++scan.report.segments_scanned;
    scan.records += seg.records;
    scan.report.records_recovered += seg.records;
    scan.segments.push_back(path);
    scan.segment_records.push_back(seg.records);
    if (!seg.torn) continue;

    if (i + 1 != segments.size()) {
      // Interior damage is not a tail: records after this segment would
      // silently vanish from the middle of the stream.
      throw TraceIoError("spool: interior segment damaged: " + path +
                             " at byte offset " +
                             std::to_string(seg.first_bad_offset),
                         seg.first_bad_offset);
    }
    scan.report.torn = true;
    scan.report.bad_segment = path;
    scan.report.first_bad_offset = seg.first_bad_offset;
    scan.report.bytes_truncated = seg.file_size - seg.valid_end;
    scan.report.records_truncated = 1;  // the torn tail frame
    if (truncate_tail) {
      fs::resize_file(path, seg.valid_end);
      fsync_directory(dir);
    }
  }
  return scan;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

SpoolScan scan_spool(const std::string& dir, bool truncate_tail) {
  return scan_spool_impl(dir, truncate_tail, nullptr);
}

Trace read_spool(const std::string& dir, SpoolRecoveryReport* report) {
  Trace trace;
  const SpoolScan scan = scan_spool_impl(
      dir, /*truncate_tail=*/false,
      [&trace](const std::uint8_t* data, std::size_t n) {
        trace.append(decode_event_binary(data, n));
      });
  if (report != nullptr) *report = scan.report;
  return trace;
}

struct SpoolWriter::Impl {
  std::FILE* file = nullptr;
  std::string path;
};

SpoolWriter::SpoolWriter(std::string dir, SpoolConfig config)
    : impl_(std::make_unique<Impl>()), config_(config), dir_(std::move(dir)) {
  const SpoolScan scan = scan_spool(dir_, /*truncate_tail=*/true);
  recovery_ = scan.report;
  open_records_ = scan.records;
  open_digest_ = scan.payload_digest;

  if (scan.segments.empty()) {
    segment_index_ = 0;
    open_segment(segment_index_, /*fresh=*/true);
    return;
  }
  std::size_t last_index = scan.segments.size() - 1;
  (void)parse_segment_index(fs::path(scan.segments.back()).filename().string(),
                            last_index);
  const std::uint64_t last_records = scan.segment_records.back();
  const std::uint64_t last_size =
      static_cast<std::uint64_t>(fs::file_size(scan.segments.back()));
  if (last_size < kHeaderBytes) {
    // The whole header was torn away: rebuild this segment from scratch.
    segment_index_ = last_index;
    open_segment(segment_index_, /*fresh=*/true);
  } else if (last_records >= config_.segment_max_records) {
    segment_index_ = last_index + 1;
    open_segment(segment_index_, /*fresh=*/true);
  } else {
    segment_index_ = last_index;
    current_segment_records_ = last_records;
    open_segment(segment_index_, /*fresh=*/false);
  }
}

SpoolWriter::~SpoolWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unsynced tail is exactly what the
    // recovery scan exists to clean up.
  }
}

void SpoolWriter::open_segment(std::size_t index, bool fresh) {
  const std::string path =
      (fs::path(dir_) / segment_name(index)).string();
  std::FILE* f = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (f == nullptr) throw std::runtime_error("spool: cannot open " + path);
  impl_->file = f;
  impl_->path = path;
  if (fresh) {
    current_segment_records_ = 0;
    std::fwrite(kSpoolMagic, 1, sizeof(kSpoolMagic), f);
    std::fwrite(&kSpoolVersion, 1, sizeof(kSpoolVersion), f);
    if (std::ferror(f) != 0) {
      throw std::runtime_error("spool: header write failed: " + path);
    }
    fsync_directory(dir_);
  }
}

void SpoolWriter::roll_if_needed() {
  if (current_segment_records_ < config_.segment_max_records) return;
  sync();
  std::fclose(impl_->file);
  impl_->file = nullptr;
  open_segment(++segment_index_, /*fresh=*/true);
}

void SpoolWriter::append(const TraceEvent& event) {
  if (closed_) throw std::logic_error("SpoolWriter: already closed");
  frame_buf_.clear();
  append_event_binary(event, frame_buf_);
  const auto len = static_cast<std::uint32_t>(frame_buf_.size());
  const std::uint32_t crc = crc32(frame_buf_.data(), frame_buf_.size());
  std::FILE* f = impl_->file;
  std::fwrite(&len, 1, sizeof(len), f);
  std::fwrite(&crc, 1, sizeof(crc), f);
  std::fwrite(frame_buf_.data(), 1, frame_buf_.size(), f);
  if (std::ferror(f) != 0) {
    throw std::runtime_error("spool: write failed: " + impl_->path);
  }
  ++appended_;
  ++current_segment_records_;
  ++unsynced_;
  if (config_.sync_interval_records > 0 &&
      unsynced_ >= config_.sync_interval_records) {
    sync();
  }
  roll_if_needed();
}

void SpoolWriter::sync() {
  if (closed_ || impl_->file == nullptr) return;
  if (std::fflush(impl_->file) != 0) {
    throw std::runtime_error("spool: flush failed: " + impl_->path);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(impl_->file)) != 0) {
    throw std::runtime_error("spool: fsync failed: " + impl_->path);
  }
#endif
  unsynced_ = 0;
}

void SpoolWriter::close() {
  if (closed_) return;
  sync();
  closed_ = true;
  if (impl_->file != nullptr) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

}  // namespace p2pgen::trace
