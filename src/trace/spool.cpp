#include "trace/spool.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "trace/spool_reader.hpp"
#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace p2pgen::trace {
namespace {

namespace fs = std::filesystem;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void fsync_directory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

/// Single pass over every segment in index order, built on the
/// validated-segment reader (spool_reader.hpp) so the scan and any
/// consumer share one read of the bytes.
SpoolScan scan_spool_impl(const std::string& dir, bool truncate_tail,
                          const SpoolPayloadFn& on_payload) {
  const std::vector<std::string> paths = spool_segment_paths(dir);

  SpoolScan scan;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string& path = paths[i];
    const SegmentReadResult seg = read_spool_segment(
        path, /*allow_damage=*/true, &scan.payload_digest, on_payload);
    ++scan.report.segments_scanned;
    scan.records += seg.records;
    scan.report.records_recovered += seg.records;
    scan.segments.push_back(path);
    scan.segment_records.push_back(seg.records);
    if (!seg.torn) continue;

    if (i + 1 != paths.size()) {
      // Interior damage is not a tail: records after this segment would
      // silently vanish from the middle of the stream.
      throw TraceIoError("spool: interior segment damaged: " + path +
                             " at byte offset " +
                             std::to_string(seg.first_bad_offset),
                         seg.first_bad_offset);
    }
    scan.report.torn = true;
    scan.report.bad_segment = path;
    scan.report.first_bad_offset = seg.first_bad_offset;
    scan.report.bytes_truncated = seg.file_size - seg.valid_end;
    scan.report.records_truncated = 1;  // the torn tail frame
    if (truncate_tail) {
      fs::resize_file(path, seg.valid_end);
      fsync_directory(dir);
    }
  }
  return scan;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

SpoolScan scan_spool(const std::string& dir, bool truncate_tail) {
  return scan_spool_impl(dir, truncate_tail, nullptr);
}

Trace read_spool(const std::string& dir, SpoolRecoveryReport* report) {
  Trace trace;
  const SpoolScan scan = scan_spool_impl(
      dir, /*truncate_tail=*/false,
      [&trace](const std::uint8_t* data, std::size_t n) {
        trace.append(decode_event_binary(data, n));
      });
  if (report != nullptr) *report = scan.report;
  return trace;
}

struct SpoolWriter::Impl {
  std::FILE* file = nullptr;
  std::string path;
};

SpoolWriter::SpoolWriter(std::string dir, SpoolConfig config)
    : impl_(std::make_unique<Impl>()), config_(config), dir_(std::move(dir)) {
  const SpoolScan scan = scan_spool(dir_, /*truncate_tail=*/true);
  recovery_ = scan.report;
  open_records_ = scan.records;
  open_digest_ = scan.payload_digest;

  if (scan.segments.empty()) {
    segment_index_ = 0;
    open_segment(segment_index_, /*fresh=*/true);
    return;
  }
  std::size_t last_index = scan.segments.size() - 1;
  (void)parse_spool_segment_index(
      fs::path(scan.segments.back()).filename().string(), last_index);
  const std::uint64_t last_records = scan.segment_records.back();
  const std::uint64_t last_size =
      static_cast<std::uint64_t>(fs::file_size(scan.segments.back()));
  if (last_size < kSpoolHeaderBytes) {
    // The whole header was torn away: rebuild this segment from scratch.
    segment_index_ = last_index;
    open_segment(segment_index_, /*fresh=*/true);
  } else if (last_records >= config_.segment_max_records) {
    segment_index_ = last_index + 1;
    open_segment(segment_index_, /*fresh=*/true);
  } else {
    segment_index_ = last_index;
    current_segment_records_ = last_records;
    open_segment(segment_index_, /*fresh=*/false);
  }
}

SpoolWriter::~SpoolWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unsynced tail is exactly what the
    // recovery scan exists to clean up.
  }
}

void SpoolWriter::open_segment(std::size_t index, bool fresh) {
  const std::string path =
      (fs::path(dir_) / spool_segment_name(index)).string();
  std::FILE* f = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (f == nullptr) throw std::runtime_error("spool: cannot open " + path);
  impl_->file = f;
  impl_->path = path;
  if (fresh) {
    current_segment_records_ = 0;
    std::fwrite(kSpoolMagic, 1, sizeof(kSpoolMagic), f);
    std::fwrite(&kSpoolVersion, 1, sizeof(kSpoolVersion), f);
    if (std::ferror(f) != 0) {
      throw std::runtime_error("spool: header write failed: " + path);
    }
    fsync_directory(dir_);
  }
}

void SpoolWriter::roll_if_needed() {
  if (current_segment_records_ < config_.segment_max_records) return;
  sync();
  std::fclose(impl_->file);
  impl_->file = nullptr;
  open_segment(++segment_index_, /*fresh=*/true);
}

void SpoolWriter::append(const TraceEvent& event) {
  if (closed_) throw std::logic_error("SpoolWriter: already closed");
  frame_buf_.clear();
  append_event_binary(event, frame_buf_);
  const auto len = static_cast<std::uint32_t>(frame_buf_.size());
  const std::uint32_t crc = crc32(frame_buf_.data(), frame_buf_.size());
  std::FILE* f = impl_->file;
  std::fwrite(&len, 1, sizeof(len), f);
  std::fwrite(&crc, 1, sizeof(crc), f);
  std::fwrite(frame_buf_.data(), 1, frame_buf_.size(), f);
  if (std::ferror(f) != 0) {
    throw std::runtime_error("spool: write failed: " + impl_->path);
  }
  ++appended_;
  ++current_segment_records_;
  ++unsynced_;
  if (config_.sync_interval_records > 0 &&
      unsynced_ >= config_.sync_interval_records) {
    sync();
  }
  roll_if_needed();
}

void SpoolWriter::sync() {
  if (closed_ || impl_->file == nullptr) return;
  if (std::fflush(impl_->file) != 0) {
    throw std::runtime_error("spool: flush failed: " + impl_->path);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(impl_->file)) != 0) {
    throw std::runtime_error("spool: fsync failed: " + impl_->path);
  }
#endif
  unsynced_ = 0;
}

void SpoolWriter::close() {
  if (closed_) return;
  sync();
  closed_ = true;
  if (impl_->file != nullptr) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

}  // namespace p2pgen::trace
