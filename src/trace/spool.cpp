#include "trace/spool.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "trace/spool_reader.hpp"
#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace p2pgen::trace {
namespace {

namespace fs = std::filesystem;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void fsync_directory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

/// Single pass over every segment in index order, built on the
/// validated-segment reader (spool_reader.hpp) so the scan and any
/// consumer share one read of the bytes.
SpoolScan scan_spool_impl(const std::string& dir, bool truncate_tail,
                          const SpoolPayloadFn& on_payload) {
  const std::vector<std::string> paths = spool_segment_paths(dir);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::size_t index = 0;
    (void)parse_spool_segment_index(fs::path(paths[i]).filename().string(),
                                    index);
    if (index != i) {
      // A hole in the numbering means a whole segment file vanished —
      // interior loss, never a torn tail.
      throw TraceIoError(
          "spool: missing segment " + spool_segment_name(i) + " in " + dir, 0);
    }
  }

  SpoolScan scan;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string& path = paths[i];
    const SegmentReadResult seg = read_spool_segment(
        path, /*allow_damage=*/true, &scan.payload_digest, on_payload);
    ++scan.report.segments_scanned;
    scan.records += seg.records;
    scan.report.records_recovered += seg.records;
    scan.segments.push_back(path);
    scan.segment_records.push_back(seg.records);
    if (!seg.torn) continue;

    if (i + 1 != paths.size()) {
      // Interior damage is not a tail: records after this segment would
      // silently vanish from the middle of the stream.
      throw TraceIoError("spool: interior segment damaged: " + path +
                             " at byte offset " +
                             std::to_string(seg.first_bad_offset),
                         seg.first_bad_offset);
    }
    scan.report.torn = true;
    scan.report.bad_segment = path;
    scan.report.first_bad_offset = seg.first_bad_offset;
    scan.report.bytes_truncated = seg.file_size - seg.valid_end;
    scan.report.records_truncated = 1;  // the torn tail frame
    if (truncate_tail) {
      fs::resize_file(path, seg.valid_end);
      fsync_directory(dir);
    }
  }
  return scan;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

SpoolScan scan_spool(const std::string& dir, bool truncate_tail) {
  return scan_spool_impl(dir, truncate_tail, nullptr);
}

Trace read_spool(const std::string& dir, SpoolRecoveryReport* report) {
  Trace trace;
  const SpoolScan scan = scan_spool_impl(
      dir, /*truncate_tail=*/false,
      [&trace](const std::uint8_t* data, std::size_t n) {
        trace.append(decode_event_binary(data, n));
      });
  if (report != nullptr) *report = scan.report;
  return trace;
}

void SalvageAssembler::add_segment(const SegmentReadResult& segment) {
  // A decodable first record closes every gap window still open from
  // earlier segments: it is the first data seen after those losses.
  if (!std::isnan(segment.first_record_time)) {
    for (const std::size_t i : open_) {
      report_.ranges[i].time_after = segment.first_record_time;
    }
    open_.clear();
  }
  for (SalvageRange range : segment.salvaged) {
    if (std::isnan(range.time_before)) {
      // The gap starts before any record of its own segment; the last
      // record of the preceding segments bounds it (0 when none ever).
      range.time_before = have_last_time_ ? last_time_ : 0.0;
    }
    report_.frames_lost += range.frames_lost;
    report_.bytes_quarantined += range.byte_end - range.byte_begin;
    if (std::isnan(range.time_after)) {
      open_.push_back(report_.ranges.size());
    }
    report_.ranges.push_back(std::move(range));
  }
  if (segment.torn) {
    // A torn tail under salvage is loss like any other: records past
    // first_bad_offset are gone, and whether more follow depends on the
    // next segment (finish() closes the window at +inf otherwise).
    SalvageRange range;
    range.file = segment.file;
    range.byte_begin = segment.first_bad_offset;
    range.byte_end = segment.file_size;
    range.frames_lost = 1;
    range.time_before = std::isnan(segment.last_record_time)
                            ? (have_last_time_ ? last_time_ : 0.0)
                            : segment.last_record_time;
    range.time_after = std::numeric_limits<double>::quiet_NaN();
    range.detail = "spool: torn tail";
    report_.frames_lost += range.frames_lost;
    report_.bytes_quarantined += range.byte_end - range.byte_begin;
    open_.push_back(report_.ranges.size());
    report_.ranges.push_back(std::move(range));
  }
  report_.records_recovered += segment.records;
  if (!std::isnan(segment.last_record_time)) {
    last_time_ = segment.last_record_time;
    have_last_time_ = true;
  }
}

void SalvageAssembler::add_missing_segment(const std::string& basename) {
  SalvageRange range;
  range.file = basename;
  range.byte_begin = 0;
  range.byte_end = 0;  // the file is gone; its size is unknowable
  range.frames_lost = 1;
  range.time_before = have_last_time_ ? last_time_ : 0.0;
  range.time_after = std::numeric_limits<double>::quiet_NaN();
  range.detail = "spool: missing segment file";
  report_.frames_lost += range.frames_lost;
  open_.push_back(report_.ranges.size());
  report_.ranges.push_back(std::move(range));
}

SalvageReport SalvageAssembler::finish() {
  for (const std::size_t i : open_) {
    // No data ever followed: the loss ran to the end of the spool.
    report_.ranges[i].time_after = std::numeric_limits<double>::infinity();
  }
  open_.clear();
  // Any NaN time_after still inside a segment (undecodable boundary
  // record) widens to +inf too — conservative, never understated.
  for (auto& range : report_.ranges) {
    if (std::isnan(range.time_after)) {
      range.time_after = std::numeric_limits<double>::infinity();
    }
  }
  return std::move(report_);
}

Trace read_spool_salvage(const std::string& dir, SalvageReport* report) {
  SpoolReader reader(dir, SpoolReadMode::kSalvage);
  SalvageAssembler assembler;
  Trace trace;
  for (std::size_t i = 0; i < reader.segment_count(); ++i) {
    for (const std::size_t index : reader.missing_before(i)) {
      assembler.add_missing_segment(spool_segment_name(index));
    }
    const SegmentReadResult segment = reader.read_segment(
        i, [&trace](const std::uint8_t* data, std::size_t n) {
          trace.append(decode_event_binary(data, n));
        });
    assembler.add_segment(segment);
  }
  SalvageReport local = assembler.finish();
  if (report != nullptr) *report = std::move(local);
  return trace;
}

std::uint64_t truncate_spool_to_valid_prefix(const std::string& dir) {
  const std::vector<std::string> paths = spool_segment_paths(dir);
  std::uint64_t dropped = 0;
  std::size_t cut = paths.size();  // first list position to delete outright
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::size_t index = 0;
    (void)parse_spool_segment_index(fs::path(paths[i]).filename().string(),
                                    index);
    if (index != i) {
      cut = i;  // hole in the numbering: the prefix ends at the hole
      break;
    }
    const SegmentReadResult seg =
        read_spool_segment(paths[i], /*allow_damage=*/true, nullptr, nullptr);
    if (!seg.torn) continue;
    // Keep this segment's valid frame prefix, drop the rest of the file
    // and every later segment.
    dropped += seg.file_size - seg.valid_end;
    if (seg.valid_end <= kSpoolHeaderBytes) {
      cut = i;  // nothing (or just a header) survives: drop the file too
      dropped -= seg.file_size - seg.valid_end;
    } else {
      fs::resize_file(paths[i], seg.valid_end);
      cut = i + 1;
    }
    break;
  }
  for (std::size_t i = cut; i < paths.size(); ++i) {
    dropped += static_cast<std::uint64_t>(fs::file_size(paths[i]));
    fs::remove(paths[i]);
  }
  if (cut < paths.size() || dropped > 0) fsync_directory(dir);
  return dropped;
}

struct SpoolWriter::Impl {
  std::FILE* file = nullptr;
  std::string path;
};

SpoolWriter::SpoolWriter(std::string dir, SpoolConfig config)
    : impl_(std::make_unique<Impl>()), config_(config), dir_(std::move(dir)) {
  const SpoolScan scan = scan_spool(dir_, /*truncate_tail=*/true);
  recovery_ = scan.report;
  open_records_ = scan.records;
  open_digest_ = scan.payload_digest;

  if (scan.segments.empty()) {
    segment_index_ = 0;
    open_segment(segment_index_, /*fresh=*/true);
    return;
  }
  std::size_t last_index = scan.segments.size() - 1;
  (void)parse_spool_segment_index(
      fs::path(scan.segments.back()).filename().string(), last_index);
  const std::uint64_t last_records = scan.segment_records.back();
  const std::uint64_t last_size =
      static_cast<std::uint64_t>(fs::file_size(scan.segments.back()));
  if (last_size < kSpoolHeaderBytes) {
    // The whole header was torn away: rebuild this segment from scratch.
    segment_index_ = last_index;
    open_segment(segment_index_, /*fresh=*/true);
  } else if (last_records >= config_.segment_max_records) {
    segment_index_ = last_index + 1;
    open_segment(segment_index_, /*fresh=*/true);
  } else {
    segment_index_ = last_index;
    current_segment_records_ = last_records;
    open_segment(segment_index_, /*fresh=*/false);
  }
}

SpoolWriter::~SpoolWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unsynced tail is exactly what the
    // recovery scan exists to clean up.
  }
}

void SpoolWriter::open_segment(std::size_t index, bool fresh) {
  const std::string path =
      (fs::path(dir_) / spool_segment_name(index)).string();
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (f == nullptr) {
    throw SpoolWriteError("spool: cannot open " + path, errno);
  }
  impl_->file = f;
  impl_->path = path;
  if (fresh) {
    current_segment_records_ = 0;
    errno = 0;
    std::fwrite(kSpoolMagic, 1, sizeof(kSpoolMagic), f);
    std::fwrite(&kSpoolVersion, 1, sizeof(kSpoolVersion), f);
    if (std::ferror(f) != 0) {
      throw SpoolWriteError("spool: header write failed: " + path, errno);
    }
    fsync_directory(dir_);
  }
}

void SpoolWriter::roll_if_needed() {
  if (current_segment_records_ < config_.segment_max_records) return;
  sync();
  std::fclose(impl_->file);
  impl_->file = nullptr;
  open_segment(++segment_index_, /*fresh=*/true);
}

void SpoolWriter::append(const TraceEvent& event) {
  if (closed_) throw std::logic_error("SpoolWriter: already closed");
  frame_buf_.clear();
  append_event_binary(event, frame_buf_);
  const auto len = static_cast<std::uint32_t>(frame_buf_.size());
  const std::uint32_t crc = crc32(frame_buf_.data(), frame_buf_.size());
  std::FILE* f = impl_->file;
  errno = 0;
  std::fwrite(&len, 1, sizeof(len), f);
  std::fwrite(&crc, 1, sizeof(crc), f);
  std::fwrite(frame_buf_.data(), 1, frame_buf_.size(), f);
  if (std::ferror(f) != 0) {
    throw SpoolWriteError("spool: write failed: " + impl_->path, errno);
  }
  ++appended_;
  ++current_segment_records_;
  ++unsynced_;
  if (config_.sync_interval_records > 0 &&
      unsynced_ >= config_.sync_interval_records) {
    sync();
  }
  roll_if_needed();
}

void SpoolWriter::sync() {
  if (closed_ || impl_->file == nullptr) return;
  errno = 0;
  if (std::fflush(impl_->file) != 0) {
    throw SpoolWriteError("spool: flush failed: " + impl_->path, errno);
  }
#if defined(__unix__) || defined(__APPLE__)
  errno = 0;
  if (::fsync(::fileno(impl_->file)) != 0) {
    throw SpoolWriteError("spool: fsync failed: " + impl_->path, errno);
  }
#endif
  unsynced_ = 0;
}

void SpoolWriter::close() {
  if (closed_) return;
  sync();
  closed_ = true;
  if (impl_->file != nullptr) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

}  // namespace p2pgen::trace
