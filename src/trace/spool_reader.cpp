#include "trace/spool_reader.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "trace/spool.hpp"
#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define P2PGEN_SPOOL_HAVE_MMAP 1
#else
#define P2PGEN_SPOOL_HAVE_MMAP 0
#endif

namespace p2pgen::trace {
namespace {

namespace fs = std::filesystem;

/// A segment's bytes: mmap'd when the platform allows, otherwise read
/// into an owned buffer.  Either way the parse below sees one flat span.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    size_ = static_cast<std::size_t>(fs::file_size(path));
#if P2PGEN_SPOOL_HAVE_MMAP
    if (size_ > 0) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) throw std::runtime_error("spool: cannot open " + path);
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        map_ = p;
        data_ = static_cast<const std::uint8_t*>(p);
        return;
      }
      // mmap can fail on exotic filesystems; fall through to read().
    }
#endif
    buf_.resize(size_);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("spool: cannot open " + path);
    if (size_ > 0) {
      in.read(reinterpret_cast<char*>(buf_.data()),
              static_cast<std::streamsize>(size_));
      if (static_cast<std::size_t>(in.gcount()) != size_) {
        throw std::runtime_error("spool: short read: " + path);
      }
    }
    data_ = buf_.data();
  }

  ~MappedFile() {
#if P2PGEN_SPOOL_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, size_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  void* map_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace

std::string spool_segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06zu.p2ps", index);
  return buf;
}

bool parse_spool_segment_index(const std::string& name, std::size_t& index) {
  if (name.rfind("seg-", 0) != 0) return false;
  const auto dot = name.find(".p2ps");
  if (dot == std::string::npos || dot + 5 != name.size()) return false;
  const std::string digits = name.substr(4, dot - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  index = static_cast<std::size_t>(std::stoull(digits));
  return true;
}

std::vector<std::string> spool_segment_paths(const std::string& dir) {
  fs::create_directories(dir);
  std::vector<std::pair<std::size_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::size_t index = 0;
    if (parse_spool_segment_index(entry.path().filename().string(), index)) {
      segments.emplace_back(index, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  std::vector<std::string> paths;
  paths.reserve(segments.size());
  for (auto& [index, path] : segments) paths.push_back(std::move(path));
  return paths;
}

SegmentReadResult read_spool_segment(const std::string& path,
                                     bool allow_damage,
                                     std::uint64_t* digest,
                                     const SpoolPayloadFn& on_payload) {
  const MappedFile file(path);
  const std::uint8_t* data = file.data();
  const std::uint64_t size = file.size();

  SegmentReadResult out;
  out.file_size = size;

  char magic[sizeof(kSpoolMagic)];
  std::uint32_t version = 0;
  if (size >= kSpoolHeaderBytes) {
    std::memcpy(magic, data, sizeof(magic));
    std::memcpy(&version, data + sizeof(magic), sizeof(version));
  }
  if (size < kSpoolHeaderBytes ||
      std::memcmp(magic, kSpoolMagic, sizeof(magic)) != 0 || version == 0 ||
      version > kSpoolVersion) {
    // Torn or foreign header: nothing in this file is trustworthy.
    out.torn = true;
    out.first_bad_offset = 0;
    out.valid_end = 0;
  } else {
    std::uint64_t pos = kSpoolHeaderBytes;
    while (true) {
      const std::uint64_t remaining = size - pos;
      if (remaining == 0) break;  // clean end on a frame boundary
      std::uint32_t len = 0;
      if (remaining < sizeof(len)) {
        out.torn = true;
        break;
      }
      std::memcpy(&len, data + pos, sizeof(len));
      if (len > kSpoolMaxPayload) {
        out.torn = true;
        break;
      }
      std::uint32_t crc = 0;
      if (remaining < sizeof(len) + sizeof(crc)) {
        out.torn = true;
        break;
      }
      std::memcpy(&crc, data + pos + sizeof(len), sizeof(crc));
      if (remaining < sizeof(len) + sizeof(crc) + len) {
        out.torn = true;
        break;
      }
      const std::uint8_t* payload = data + pos + sizeof(len) + sizeof(crc);
      if (crc32(payload, len) != crc) {
        out.torn = true;
        break;
      }
      pos += sizeof(len) + sizeof(crc) + len;
      ++out.records;
      if (digest != nullptr) *digest = fnv1a_update(*digest, payload, len);
      if (on_payload) on_payload(payload, len);
    }
    out.valid_end = pos;
    if (out.torn) out.first_bad_offset = pos;
  }

  if (out.torn && !allow_damage) {
    throw TraceIoError("spool: segment damaged: " + path + " at byte offset " +
                           std::to_string(out.first_bad_offset),
                       out.first_bad_offset);
  }
  return out;
}

SpoolReader::SpoolReader(std::string dir)
    : dir_(std::move(dir)), segments_(spool_segment_paths(dir_)) {}

SegmentReadResult SpoolReader::read_segment(
    std::size_t index, const SpoolPayloadFn& on_payload) const {
  if (index >= segments_.size()) {
    throw std::out_of_range("SpoolReader: segment index " +
                            std::to_string(index) + " out of range");
  }
  const std::string& path = segments_[index];
  const SegmentReadResult out =
      read_spool_segment(path, /*allow_damage=*/true, nullptr, on_payload);
  if (out.torn && index + 1 != segments_.size()) {
    // Interior damage is not a tail: records after this segment would
    // silently vanish from the middle of the stream.
    throw TraceIoError("spool: interior segment damaged: " + path +
                           " at byte offset " +
                           std::to_string(out.first_bad_offset),
                       out.first_bad_offset);
  }
  return out;
}

}  // namespace p2pgen::trace
