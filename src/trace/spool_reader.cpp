#include "trace/spool_reader.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "trace/spool.hpp"
#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define P2PGEN_SPOOL_HAVE_MMAP 1
#else
#define P2PGEN_SPOOL_HAVE_MMAP 0
#endif

namespace p2pgen::trace {
namespace {

namespace fs = std::filesystem;

/// A segment's bytes: mmap'd when the platform allows, otherwise read
/// into an owned buffer.  Either way the parse below sees one flat span.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    size_ = static_cast<std::size_t>(fs::file_size(path));
#if P2PGEN_SPOOL_HAVE_MMAP
    if (size_ > 0) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) throw std::runtime_error("spool: cannot open " + path);
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        map_ = p;
        data_ = static_cast<const std::uint8_t*>(p);
        return;
      }
      // mmap can fail on exotic filesystems; fall through to read().
    }
#endif
    buf_.resize(size_);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("spool: cannot open " + path);
    if (size_ > 0) {
      in.read(reinterpret_cast<char*>(buf_.data()),
              static_cast<std::streamsize>(size_));
      if (static_cast<std::size_t>(in.gcount()) != size_) {
        throw std::runtime_error("spool: short read: " + path);
      }
    }
    data_ = buf_.data();
  }

  ~MappedFile() {
#if P2PGEN_SPOOL_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, size_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  void* map_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> buf_;
};

/// Decodes one frame payload just far enough to learn its sim-time.
/// Never throws: boundary-time inference must not turn a recoverable
/// gap into a hard error.
double payload_time(const std::uint8_t* data, std::size_t size) noexcept {
  try {
    return event_time(decode_event_binary(data, size));
  } catch (...) {
    return std::numeric_limits<double>::quiet_NaN();
  }
}

/// Is there a CRC-valid frame starting at `q`?  `crc_budget` is drawn
/// down by every payload byte checksummed while probing; a zero budget
/// fails all further probes (the bounded part of the bounded scan).
bool probe_frame(const std::uint8_t* data, std::uint64_t size, std::uint64_t q,
                 std::uint64_t& crc_budget) {
  if (size - q < 2 * sizeof(std::uint32_t)) return false;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, data + q, sizeof(len));
  std::memcpy(&crc, data + q + sizeof(len), sizeof(crc));
  // The writer never frames an empty payload, and CRC32 of nothing is 0:
  // without the len == 0 guard any 8 zero bytes inside a damaged region
  // would count as a valid resync point and fragment the quarantine.
  if (len == 0 || len > kSpoolMaxPayload) return false;
  if (size - q < 2 * sizeof(std::uint32_t) + len) return false;
  if (crc_budget < len) {
    crc_budget = 0;
    return false;
  }
  crc_budget -= len;
  return crc32(data + q + 2 * sizeof(std::uint32_t), len) == crc;
}

}  // namespace

std::string spool_segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06zu.p2ps", index);
  return buf;
}

bool parse_spool_segment_index(const std::string& name, std::size_t& index) {
  if (name.rfind("seg-", 0) != 0) return false;
  const auto dot = name.find(".p2ps");
  if (dot == std::string::npos || dot + 5 != name.size()) return false;
  const std::string digits = name.substr(4, dot - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  index = static_cast<std::size_t>(std::stoull(digits));
  return true;
}

std::vector<std::string> spool_segment_paths(const std::string& dir) {
  fs::create_directories(dir);
  std::vector<std::pair<std::size_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::size_t index = 0;
    if (parse_spool_segment_index(entry.path().filename().string(), index)) {
      segments.emplace_back(index, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  std::vector<std::string> paths;
  paths.reserve(segments.size());
  for (auto& [index, path] : segments) paths.push_back(std::move(path));
  return paths;
}

SegmentReadResult read_spool_segment(const std::string& path,
                                     bool allow_damage,
                                     std::uint64_t* digest,
                                     const SpoolPayloadFn& on_payload,
                                     SpoolReadMode mode) {
  const MappedFile file(path);
  const std::uint8_t* data = file.data();
  const std::uint64_t size = file.size();
  const bool salvage = mode == SpoolReadMode::kSalvage;
  constexpr std::uint64_t kFrameOverhead = 2 * sizeof(std::uint32_t);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  SegmentReadResult out;
  out.file = fs::path(path).filename().string();
  out.file_size = size;

  // Last accepted payload, remembered by position so its sim-time can be
  // decoded lazily — only when a gap actually needs it.
  std::uint64_t last_off = 0;
  std::uint32_t last_len = 0;
  bool have_last = false;
  const auto last_time = [&]() -> double {
    return have_last ? payload_time(data + last_off, last_len) : kNaN;
  };

  // Finds the next valid frame at or after `from`: the frame-skip
  // candidate first (an intact length header makes the loss exactly one
  // frame), then a bounded byte scan.  Returns size + 1 when no resync
  // point exists within the window/budget.
  std::uint64_t crc_budget = kSalvageCrcBudget;
  const auto resync_from = [&](std::uint64_t from,
                               std::uint64_t skip_candidate) -> std::uint64_t {
    if (skip_candidate >= from && skip_candidate < size &&
        probe_frame(data, size, skip_candidate, crc_budget)) {
      return skip_candidate;
    }
    const std::uint64_t limit =
        std::min(size, from + kSalvageScanWindow);
    for (std::uint64_t q = from; q < limit && crc_budget > 0; ++q) {
      if (q == skip_candidate) continue;  // already probed
      if (probe_frame(data, size, q, crc_budget)) return q;
    }
    return size + 1;
  };

  // Quarantines [begin, end); the next accepted record closes the gap's
  // time window.
  bool patch_pending = false;
  const auto quarantine = [&](std::uint64_t begin, std::uint64_t end,
                              std::string detail) {
    SalvageRange range;
    range.file = fs::path(path).filename().string();
    range.byte_begin = begin;
    range.byte_end = end;
    range.frames_lost = 1;  // exact for single-frame damage, else a floor
    range.time_before = last_time();  // NaN: gap starts before any record
    range.time_after = kNaN;          // patched at the next accepted record
    range.detail = std::move(detail);
    out.salvaged.push_back(std::move(range));
    patch_pending = true;
  };

  char magic[sizeof(kSpoolMagic)];
  std::uint32_t version = 0;
  if (size >= kSpoolHeaderBytes) {
    std::memcpy(magic, data, sizeof(magic));
    std::memcpy(&version, data + sizeof(magic), sizeof(version));
  }
  const bool header_ok =
      size >= kSpoolHeaderBytes &&
      std::memcmp(magic, kSpoolMagic, sizeof(magic)) == 0 && version != 0 &&
      version <= kSpoolVersion;

  std::uint64_t pos = kSpoolHeaderBytes;
  bool parse = header_ok;
  if (!header_ok) {
    // Torn or foreign header.  Strict: nothing in this file is
    // trustworthy.  Salvage: the frames after the 8 damaged header bytes
    // may be intact — probe for them.
    out.torn = true;
    out.first_bad_offset = 0;
    out.valid_end = 0;
    if (salvage && size > kSpoolHeaderBytes) {
      const std::uint64_t q = resync_from(kSpoolHeaderBytes, 0);
      if (q <= size) {
        quarantine(0, q, "spool: damaged segment header");
        out.torn = false;
        pos = q;
        parse = true;
      }
    }
  }

  if (parse) {
    while (pos < size) {
      const std::uint64_t remaining = size - pos;
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      bool framed = false;  // header readable, length sane, payload fits
      const char* why = nullptr;
      if (remaining < sizeof(len)) {
        why = "torn frame length";
      } else {
        std::memcpy(&len, data + pos, sizeof(len));
        if (len == 0 || len > kSpoolMaxPayload) {
          // Zero-length frames are never written (see probe_frame).
          why = "implausible frame length";
        } else if (remaining < kFrameOverhead) {
          why = "torn frame checksum";
        } else {
          std::memcpy(&crc, data + pos + sizeof(len), sizeof(crc));
          if (remaining < kFrameOverhead + len) {
            why = "torn frame payload";
          } else {
            framed = true;
          }
        }
      }
      if (framed) {
        const std::uint8_t* payload = data + pos + kFrameOverhead;
        if (crc32(payload, len) == crc) {
          const std::uint64_t frame_begin = pos;
          pos += kFrameOverhead + len;
          if (salvage) {
            try {
              if (on_payload) on_payload(payload, len);
            } catch (const TraceIoError& e) {
              // CRC-valid yet undecodable: quarantine just this frame
              // (its bytes never reach the digest or the consumer).
              quarantine(frame_begin, pos, e.what());
              continue;
            }
            if (out.records == 0) {
              out.first_record_time = payload_time(payload, len);
            }
            if (patch_pending) {
              out.salvaged.back().time_after = payload_time(payload, len);
              patch_pending = false;
            }
            last_off = frame_begin + kFrameOverhead;
            last_len = len;
            have_last = true;
          } else {
            if (on_payload) on_payload(payload, len);
          }
          ++out.records;
          if (digest != nullptr) *digest = fnv1a_update(*digest, payload, len);
          continue;
        }
        why = "frame checksum mismatch";
      }
      // Damage at pos.
      if (!salvage) {
        out.torn = true;
        break;
      }
      const std::uint64_t skip = framed ? pos + kFrameOverhead + len : 0;
      const std::uint64_t q = resync_from(pos + 1, skip);
      if (q > size) {
        // No valid frame within the window/budget: the damage runs to
        // the end of the file as far as we can tell.  Report torn and
        // let the caller decide tail-vs-gap.
        out.torn = true;
        break;
      }
      quarantine(pos, q,
                 std::string("spool: ") + why + " at byte offset " +
                     std::to_string(pos));
      pos = q;
    }
    out.valid_end = pos;
    if (out.torn) out.first_bad_offset = pos;
  }

  if (salvage) out.last_record_time = last_time();

  if (out.torn && !allow_damage) {
    throw TraceIoError("spool: segment damaged: " + path + " at byte offset " +
                           std::to_string(out.first_bad_offset),
                       out.first_bad_offset);
  }
  return out;
}

SpoolReader::SpoolReader(std::string dir, SpoolReadMode mode)
    : dir_(std::move(dir)), mode_(mode), segments_(spool_segment_paths(dir_)) {
  file_indices_.reserve(segments_.size());
  for (const auto& path : segments_) {
    std::size_t index = 0;
    (void)parse_spool_segment_index(fs::path(path).filename().string(), index);
    file_indices_.push_back(index);
  }
  if (mode_ == SpoolReadMode::kStrict) {
    // The writer numbers segments contiguously from 0; a hole means a
    // whole segment file vanished — interior loss, never a torn tail.
    for (std::size_t p = 0; p < file_indices_.size(); ++p) {
      if (file_indices_[p] != p) {
        throw TraceIoError(
            "spool: missing segment " + spool_segment_name(p) + " in " + dir_,
            0);
      }
    }
  }
}

std::vector<std::size_t> SpoolReader::missing_before(
    std::size_t position) const {
  std::vector<std::size_t> missing;
  if (position > segments_.size()) return missing;
  const std::size_t lo = position == 0 ? 0 : file_indices_[position - 1] + 1;
  const std::size_t hi = position == segments_.size()
                             ? lo  // holes after the last file are unknowable
                             : file_indices_[position];
  for (std::size_t i = lo; i < hi; ++i) missing.push_back(i);
  return missing;
}

SegmentReadResult SpoolReader::read_segment(
    std::size_t index, const SpoolPayloadFn& on_payload) const {
  if (index >= segments_.size()) {
    throw std::out_of_range("SpoolReader: segment index " +
                            std::to_string(index) + " out of range");
  }
  const std::string& path = segments_[index];
  SegmentReadResult out =
      read_spool_segment(path, /*allow_damage=*/true, nullptr, on_payload,
                         mode_);
  const bool interior = index + 1 != segments_.size();
  if (out.torn && interior) {
    if (mode_ == SpoolReadMode::kStrict) {
      // Interior damage is not a tail: records after this segment would
      // silently vanish from the middle of the stream.
      throw TraceIoError("spool: interior segment damaged: " + path +
                             " at byte offset " +
                             std::to_string(out.first_bad_offset),
                         out.first_bad_offset);
    }
    // Salvage: unresynced interior damage runs to the end of this
    // segment but the stream continues in the next one — account it as
    // a quarantined gap, not a tail.
    SalvageRange range;
    range.file = fs::path(path).filename().string();
    range.byte_begin = out.first_bad_offset;
    range.byte_end = out.file_size;
    range.frames_lost = 1;
    range.time_before = out.last_record_time;  // NaN when no record survived
    range.time_after = std::numeric_limits<double>::quiet_NaN();
    range.detail = "spool: interior damage to end of segment";
    out.salvaged.push_back(std::move(range));
    out.torn = false;
  }
  return out;
}

}  // namespace p2pgen::trace
