// p2pgen — durable trace spool (DESIGN.md §9).
//
// An append-only, segmented, CRC32-framed record log: the redo log the
// crash-recoverable pipeline streams every shard's trace events into.
// The paper's measurement node ran unattended for 40 days; a faithful
// long-running reproduction must survive process death mid-run, so every
// event is framed as
//
//   [u32 payload length][u32 CRC32(payload)][payload]
//
// inside numbered segment files ("P2PS" magic), and a recovery scan on
// open validates every frame in order.  A SIGKILL can tear at most the
// tail of the *last* segment: the scan truncates the torn frame(s) and
// the writer resumes appending cleanly.  Damage to an interior segment
// is not a tail — records after it would silently go missing — so it is
// a hard error, exactly like the strict trace reader.
//
// The payload of each frame is the single-record binary encoding of one
// TraceEvent (trace_io's append_event_binary), so a spool is a durable,
// per-record-checksummed form of the same stream save_binary writes.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::trace {

struct SegmentReadResult;  // spool_reader.hpp

/// FNV-1a 64-bit, the digest the whole repo uses for byte-identity.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a_update(std::uint64_t hash, const void* data,
                                  std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// CRC32 (IEEE 802.3, the zlib polynomial) of a buffer.
std::uint32_t crc32(const void* data, std::size_t n) noexcept;

struct SpoolConfig {
  /// Records per segment before the writer rolls to a new file.
  std::uint64_t segment_max_records = 1u << 20;
  /// fsync the current segment every this many appended records.
  /// 0: sync only on explicit sync()/close() — fastest, but a crash can
  /// lose everything since the last sync.
  std::uint64_t sync_interval_records = 0;
};

/// What the recovery scan found (and possibly repaired).
struct SpoolRecoveryReport {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_recovered = 0;  ///< valid frames across all segments
  std::uint64_t records_truncated = 0;  ///< damaged tail frames dropped (0 or 1)
  std::uint64_t bytes_truncated = 0;    ///< bytes dropped from the torn tail
  std::uint64_t first_bad_offset = 0;   ///< offset within bad_segment
  std::string bad_segment;              ///< path of the torn segment ("" if clean)
  bool torn = false;
};

/// Result of scanning a spool directory.
struct SpoolScan {
  std::uint64_t records = 0;
  /// FNV-1a over every valid frame payload, in order — the digest the
  /// checkpoint layer compares a deterministic replay against.
  std::uint64_t payload_digest = kFnvOffsetBasis;
  SpoolRecoveryReport report;
  std::vector<std::string> segments;        ///< segment paths, in order
  std::vector<std::uint64_t> segment_records;  ///< valid records per segment
};

/// Validates every frame of every segment under `dir` (created if
/// missing).  With `truncate_tail`, a torn tail of the last segment is
/// physically truncated so the spool is clean for appending.  Throws
/// TraceIoError if an *interior* segment is damaged.
SpoolScan scan_spool(const std::string& dir, bool truncate_tail);

/// Reads the spool's valid record prefix back as a Trace.  Never throws
/// on a torn tail (the report says what was dropped); throws TraceIoError
/// on interior damage or an undecodable (CRC-valid but malformed) record.
Trace read_spool(const std::string& dir, SpoolRecoveryReport* report = nullptr);

/// Salvage-mode spool read (DESIGN.md §14): interior damage — corrupt
/// frames, damaged headers, even whole missing segment files — is
/// resynced past and quarantined instead of thrown.  Every lost byte
/// range lands in `report` with its inferred sim-time gap window.  On a
/// clean spool the returned trace and its digest are bit-identical to
/// read_spool()'s and report->damaged() is false.
Trace read_spool_salvage(const std::string& dir,
                         SalvageReport* report = nullptr);

/// Stitches per-segment salvage results into one spool-level report.
/// Feed segments in stream (index) order; gap time windows that touch a
/// segment boundary (NaN ends from the segment reader) are patched from
/// the neighboring segments' boundary record times.  finish() closes any
/// still-open window at +inf (the damage ran to the end of the spool).
/// Used by both spool paths — read_spool_salvage() and the streaming
/// analysis — so the two report identical gaps for identical damage.
class SalvageAssembler {
 public:
  /// Accounts one segment read in salvage mode (in index order).
  void add_segment(const SegmentReadResult& segment);

  /// Accounts a whole missing segment file as one unbounded-loss gap.
  void add_missing_segment(const std::string& basename);

  /// Closes open gap windows and returns the assembled report.
  SalvageReport finish();

  /// Peek at the report assembled so far (open windows still carry NaN
  /// ends).  The streaming pass censors sessions against this mid-run;
  /// any window discovered after a session ends starts at or after that
  /// session's end, so the mid-run view and the finished view give the
  /// same overlap verdicts.
  const SalvageReport& report() const noexcept { return report_; }

 private:
  SalvageReport report_;
  double last_time_ = 0.0;  ///< last decodable record time seen so far
  bool have_last_time_ = false;
  std::vector<std::size_t> open_;  ///< ranges still awaiting a time_after
};

/// Truncates the spool to its longest clean prefix: the first damaged or
/// missing frame and *everything after it* (including later segments) is
/// removed, so a deterministic replay can regenerate the rest.  Returns
/// the number of bytes dropped.  The checkpoint layer uses this for
/// damaged spools of *unfinished* shards, where re-simulation recovers
/// the loss exactly instead of leaving a gap.
std::uint64_t truncate_spool_to_valid_prefix(const std::string& dir);

/// Thrown by SpoolWriter on a failed/short write or sync.  Carries errno
/// so the checkpoint layer can tell disk-full (ENOSPC) from other media
/// errors and turn it into a clean checkpoint-and-stop.
class SpoolWriteError : public std::runtime_error {
 public:
  SpoolWriteError(const std::string& what, int error_code)
      : std::runtime_error(what), error_code_(error_code) {}

  /// The errno captured at the failure site (0 when unavailable).
  int error_code() const noexcept { return error_code_; }

 private:
  int error_code_;
};

/// Append handle on a spool directory.  Construction runs the recovery
/// scan (truncating a torn tail) and positions after the last valid
/// record; on_event/append then frame, checksum and buffer each record,
/// and sync() (or the configured interval) makes them durable with
/// fflush + fsync.  Also usable directly as a TraceSink.
class SpoolWriter : public TraceSink {
 public:
  explicit SpoolWriter(std::string dir, SpoolConfig config = {});
  ~SpoolWriter() override;

  SpoolWriter(const SpoolWriter&) = delete;
  SpoolWriter& operator=(const SpoolWriter&) = delete;

  void on_event(const TraceEvent& event) override { append(event); }
  void append(const TraceEvent& event);

  /// Flushes buffered frames and fsyncs the current segment.
  void sync();

  /// sync() + close the segment file; further appends throw.
  void close();

  /// Valid records found on disk when the writer opened.
  std::uint64_t durable_records() const noexcept { return open_records_; }
  /// FNV-1a payload digest of those records (see SpoolScan).
  std::uint64_t open_digest() const noexcept { return open_digest_; }
  /// durable_records() + records appended through this writer.
  std::uint64_t records() const noexcept { return open_records_ + appended_; }
  /// The open-time recovery scan's findings.
  const SpoolRecoveryReport& recovery() const noexcept { return recovery_; }

 private:
  void open_segment(std::size_t index, bool fresh);
  void roll_if_needed();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  SpoolConfig config_;
  std::string dir_;
  SpoolRecoveryReport recovery_;
  std::uint64_t open_records_ = 0;
  std::uint64_t open_digest_ = kFnvOffsetBasis;
  std::uint64_t appended_ = 0;
  std::uint64_t current_segment_records_ = 0;
  std::uint64_t unsynced_ = 0;
  std::size_t segment_index_ = 0;
  std::string frame_buf_;
  bool closed_ = false;
};

}  // namespace p2pgen::trace
