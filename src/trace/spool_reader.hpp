// p2pgen — single-pass validated spool segment reader (DESIGN.md §11).
//
// The original recovery path read every spool segment twice: once in the
// scan (CRC validation) and once more when the analysis replayed the
// records.  SpoolReader collapses that into one pass: each segment is
// mapped (mmap when available, buffered read otherwise) and its frames
// are CRC-validated *while* the payloads are handed to the consumer, so
// validation is free for whoever reads the spool anyway.  The recovery
// decision is made online with the same policy as the scan:
//
//   * a torn tail is tolerated only on the LAST segment (reported, the
//     valid prefix is kept),
//   * damage to an interior segment is a hard TraceIoError — records
//     after it would silently vanish from the middle of the stream.
//
// Salvage mode (SpoolReadMode::kSalvage, DESIGN.md §14) relaxes the
// second rule with *accounted* loss instead of silence: on interior
// damage the reader resyncs to the next valid [len][crc][payload] frame
// (frame-skip first, then a bounded CRC-probed byte scan), quarantines
// the damaged byte range as a SalvageRange, and keeps going.  On a clean
// spool salvage is bit-identical to strict: same payloads, same order,
// same digest.
//
// scan_spool()/read_spool() (trace/spool.hpp) are built on this reader,
// and the streaming analysis (analysis/streaming.hpp) uses it directly
// so paper-scale spools are read exactly once, segment-parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace p2pgen::trace {

/// Spool on-disk format constants, shared by writer and reader.
inline constexpr char kSpoolMagic[4] = {'P', '2', 'P', 'S'};
inline constexpr std::uint32_t kSpoolVersion = 1;
inline constexpr std::uint64_t kSpoolHeaderBytes =
    sizeof(kSpoolMagic) + sizeof(std::uint32_t);
/// Frames above this payload size are corruption, not data: a trace
/// record is a few dozen bytes plus a query string capped at 1 MiB.
inline constexpr std::uint32_t kSpoolMaxPayload = 1u << 24;

/// Segment filename for an index ("seg-NNNNNN.p2ps").
std::string spool_segment_name(std::size_t index);

/// Index encoded in a segment filename; false when `name` is not one.
bool parse_spool_segment_index(const std::string& name, std::size_t& index);

/// Segment file paths under `dir` (created if missing), in index order.
std::vector<std::string> spool_segment_paths(const std::string& dir);

/// Receives one validated frame payload.
using SpoolPayloadFn =
    std::function<void(const std::uint8_t* data, std::size_t size)>;

/// How the reader treats frame damage.
enum class SpoolReadMode {
  kStrict,   ///< any interior damage is a hard error (default everywhere)
  kSalvage,  ///< resync past damage, quarantine the range, account the loss
};

/// Salvage resync bounds: how far past a damage point the byte scan will
/// look for the next valid frame, and how many payload bytes it will CRC
/// while probing, before giving up on the rest of the segment.
inline constexpr std::uint64_t kSalvageScanWindow = 16ull << 20;
inline constexpr std::uint64_t kSalvageCrcBudget = 256ull << 20;

/// What one single-pass segment read found.
struct SegmentReadResult {
  std::string file;                 ///< segment basename ("seg-NNNNNN.p2ps")
  std::uint64_t records = 0;        ///< valid frames fed to the consumer
  std::uint64_t valid_end = 0;      ///< bytes of valid header + frames
  std::uint64_t file_size = 0;
  std::uint64_t first_bad_offset = 0;  ///< == valid_end when torn
  bool torn = false;                ///< damaged tail found (and tolerated)
  /// Interior damage resynced past (salvage mode only), in byte order.
  /// time_before/time_after are NaN when the gap touches the segment
  /// boundary — SalvageAssembler (spool.hpp) patches those from the
  /// neighboring segments.
  std::vector<SalvageRange> salvaged;
  /// Sim-times of the first/last valid record (salvage mode only; NaN
  /// when the segment held no valid records or decoding them failed).
  double first_record_time = std::numeric_limits<double>::quiet_NaN();
  double last_record_time = std::numeric_limits<double>::quiet_NaN();
};

/// Reads `path` in one pass, CRC-validating each frame and feeding every
/// valid payload to `on_payload` (may be null).  `digest`, when non-null,
/// is FNV-1a-updated over the valid payloads in order.  With
/// `allow_damage` the valid prefix is kept and the damage reported;
/// without it any damage throws TraceIoError with the byte offset.
/// In salvage mode interior damage is resynced past and quarantined into
/// `salvaged`; only damage that runs to the end of the file is still
/// reported as torn (the caller decides whether that is a tolerated tail
/// or an interior gap).
SegmentReadResult read_spool_segment(const std::string& path,
                                     bool allow_damage,
                                     std::uint64_t* digest,
                                     const SpoolPayloadFn& on_payload,
                                     SpoolReadMode mode = SpoolReadMode::kStrict);

/// Validated-segment iterator over a whole spool directory.  Lists the
/// segments on construction; read_segment() validates and decodes one
/// segment in a single pass.  Distinct segments may be read concurrently
/// (the reader holds no per-read state) — the deterministic merge in the
/// streaming analysis decodes segments in parallel this way.
class SpoolReader {
 public:
  /// Opens `dir` (created if missing).  No segment bytes are read yet.
  /// In strict mode a hole in the segment numbering (a deleted interior
  /// segment file) throws TraceIoError; in salvage mode the missing
  /// indices are recorded for the caller to account as whole-segment
  /// gaps (missing_before()).
  explicit SpoolReader(std::string dir,
                       SpoolReadMode mode = SpoolReadMode::kStrict);

  const std::string& dir() const noexcept { return dir_; }
  SpoolReadMode mode() const noexcept { return mode_; }
  std::size_t segment_count() const noexcept { return segments_.size(); }
  const std::vector<std::string>& segment_paths() const noexcept {
    return segments_;
  }

  /// Segment filename indices that are missing from the numbering right
  /// before list position `position` (e.g. seg-000002 deleted: returned
  /// for position 2, the list position of seg-000003).  Pass
  /// segment_count() for holes after the last present segment (never
  /// detectable — the list just ends) — returns empty then.  Always
  /// empty in strict mode (the constructor would have thrown).
  std::vector<std::size_t> missing_before(std::size_t position) const;

  /// Reads segment `index` (list position), feeding every valid payload
  /// to `on_payload`.  Torn tails are tolerated (and reported) only on
  /// the final segment.  Strict mode: damage anywhere else throws
  /// TraceIoError.  Salvage mode: interior damage becomes quarantined
  /// SalvageRanges in the result (boundary gap times left NaN for
  /// SalvageAssembler to patch).  Thread-safe for distinct indices.
  SegmentReadResult read_segment(std::size_t index,
                                 const SpoolPayloadFn& on_payload) const;

 private:
  std::string dir_;
  SpoolReadMode mode_;
  std::vector<std::string> segments_;
  std::vector<std::size_t> file_indices_;  ///< parsed filename indices
};

}  // namespace p2pgen::trace
