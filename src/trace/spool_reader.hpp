// p2pgen — single-pass validated spool segment reader (DESIGN.md §11).
//
// The original recovery path read every spool segment twice: once in the
// scan (CRC validation) and once more when the analysis replayed the
// records.  SpoolReader collapses that into one pass: each segment is
// mapped (mmap when available, buffered read otherwise) and its frames
// are CRC-validated *while* the payloads are handed to the consumer, so
// validation is free for whoever reads the spool anyway.  The recovery
// decision is made online with the same policy as the scan:
//
//   * a torn tail is tolerated only on the LAST segment (reported, the
//     valid prefix is kept),
//   * damage to an interior segment is a hard TraceIoError — records
//     after it would silently vanish from the middle of the stream.
//
// scan_spool()/read_spool() (trace/spool.hpp) are built on this reader,
// and the streaming analysis (analysis/streaming.hpp) uses it directly
// so paper-scale spools are read exactly once, segment-parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace p2pgen::trace {

/// Spool on-disk format constants, shared by writer and reader.
inline constexpr char kSpoolMagic[4] = {'P', '2', 'P', 'S'};
inline constexpr std::uint32_t kSpoolVersion = 1;
inline constexpr std::uint64_t kSpoolHeaderBytes =
    sizeof(kSpoolMagic) + sizeof(std::uint32_t);
/// Frames above this payload size are corruption, not data: a trace
/// record is a few dozen bytes plus a query string capped at 1 MiB.
inline constexpr std::uint32_t kSpoolMaxPayload = 1u << 24;

/// Segment filename for an index ("seg-NNNNNN.p2ps").
std::string spool_segment_name(std::size_t index);

/// Index encoded in a segment filename; false when `name` is not one.
bool parse_spool_segment_index(const std::string& name, std::size_t& index);

/// Segment file paths under `dir` (created if missing), in index order.
std::vector<std::string> spool_segment_paths(const std::string& dir);

/// Receives one validated frame payload.
using SpoolPayloadFn =
    std::function<void(const std::uint8_t* data, std::size_t size)>;

/// What one single-pass segment read found.
struct SegmentReadResult {
  std::uint64_t records = 0;        ///< valid frames fed to the consumer
  std::uint64_t valid_end = 0;      ///< bytes of valid header + frames
  std::uint64_t file_size = 0;
  std::uint64_t first_bad_offset = 0;  ///< == valid_end when torn
  bool torn = false;                ///< damaged tail found (and tolerated)
};

/// Reads `path` in one pass, CRC-validating each frame and feeding every
/// valid payload to `on_payload` (may be null).  `digest`, when non-null,
/// is FNV-1a-updated over the valid payloads in order.  With
/// `allow_damage` the valid prefix is kept and the damage reported;
/// without it any damage throws TraceIoError with the byte offset.
SegmentReadResult read_spool_segment(const std::string& path,
                                     bool allow_damage,
                                     std::uint64_t* digest,
                                     const SpoolPayloadFn& on_payload);

/// Validated-segment iterator over a whole spool directory.  Lists the
/// segments on construction; read_segment() validates and decodes one
/// segment in a single pass.  Distinct segments may be read concurrently
/// (the reader holds no per-read state) — the deterministic merge in the
/// streaming analysis decodes segments in parallel this way.
class SpoolReader {
 public:
  /// Opens `dir` (created if missing).  No segment bytes are read yet.
  explicit SpoolReader(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  std::size_t segment_count() const noexcept { return segments_.size(); }
  const std::vector<std::string>& segment_paths() const noexcept {
    return segments_;
  }

  /// Reads segment `index`, feeding every valid payload to `on_payload`.
  /// Torn tails are tolerated (and reported) only on the final segment;
  /// damage anywhere else throws TraceIoError.  Thread-safe for distinct
  /// indices.
  SegmentReadResult read_segment(std::size_t index,
                                 const SpoolPayloadFn& on_payload) const;

 private:
  std::string dir_;
  std::vector<std::string> segments_;
};

}  // namespace p2pgen::trace
