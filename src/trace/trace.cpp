#include "trace/trace.hpp"

#include <algorithm>
#include <queue>

namespace p2pgen::trace {

double event_time(const TraceEvent& event) {
  return std::visit([](const auto& e) { return e.time; }, event);
}

TraceStats Trace::stats() const {
  TraceStats s;
  bool first = true;
  for (const auto& event : events_) {
    const double t = event_time(event);
    if (first) {
      s.first_time = t;
      first = false;
    }
    s.first_time = std::min(s.first_time, t);
    s.last_time = std::max(s.last_time, t);

    if (const auto* start = std::get_if<SessionStart>(&event)) {
      ++s.direct_connections;
      if (start->ultrapeer) {
        ++s.ultrapeer_connections;
      } else {
        ++s.leaf_connections;
      }
    } else if (const auto* msg = std::get_if<MessageEvent>(&event)) {
      switch (msg->type) {
        case gnutella::MessageType::kQuery:
          ++s.query_messages;
          if (msg->hops == 1) ++s.hop1_queries;
          break;
        case gnutella::MessageType::kQueryHit:
          ++s.queryhit_messages;
          break;
        case gnutella::MessageType::kPing:
          ++s.ping_messages;
          break;
        case gnutella::MessageType::kPong:
          ++s.pong_messages;
          break;
        case gnutella::MessageType::kBye:
          ++s.bye_messages;
          break;
        case gnutella::MessageType::kRouteTableUpdate:
          ++s.route_update_messages;
          break;
      }
    }
  }
  return s;
}

Trace merge_traces(std::vector<Trace> shards) {
  std::vector<std::vector<TraceEvent>> streams;
  streams.reserve(shards.size());
  std::size_t total = 0;
  for (auto& shard : shards) {
    streams.push_back(shard.release());
    total += streams.back().size();
  }

  // K-way merge over the (already time-sorted) shard streams.  The heap
  // orders heads by (time, shard index); within a shard the positional
  // order is preserved, so the reduction is stable and deterministic.
  struct Head {
    double time;
    std::size_t shard;
  };
  auto later = [](const Head& a, const Head& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heads(later);
  std::vector<std::size_t> pos(streams.size(), 0);
  for (std::size_t k = 0; k < streams.size(); ++k) {
    if (!streams[k].empty()) heads.push({event_time(streams[k][0]), k});
  }

  Trace merged;
  merged.reserve(total);
  while (!heads.empty()) {
    const std::size_t k = heads.top().shard;
    heads.pop();
    TraceEvent event = std::move(streams[k][pos[k]]);
    const std::uint64_t base =
        static_cast<std::uint64_t>(k) * kShardSessionStride;
    std::visit([base](auto& e) { e.session_id += base; }, event);
    merged.append(std::move(event));
    if (++pos[k] < streams[k].size()) {
      heads.push({event_time(streams[k][pos[k]]), k});
    }
  }
  return merged;
}

}  // namespace p2pgen::trace
