#include "trace/trace.hpp"

#include <algorithm>

namespace p2pgen::trace {

double event_time(const TraceEvent& event) {
  return std::visit([](const auto& e) { return e.time; }, event);
}

TraceStats Trace::stats() const {
  TraceStats s;
  bool first = true;
  for (const auto& event : events_) {
    const double t = event_time(event);
    if (first) {
      s.first_time = t;
      first = false;
    }
    s.first_time = std::min(s.first_time, t);
    s.last_time = std::max(s.last_time, t);

    if (const auto* start = std::get_if<SessionStart>(&event)) {
      ++s.direct_connections;
      if (start->ultrapeer) {
        ++s.ultrapeer_connections;
      } else {
        ++s.leaf_connections;
      }
    } else if (const auto* msg = std::get_if<MessageEvent>(&event)) {
      switch (msg->type) {
        case gnutella::MessageType::kQuery:
          ++s.query_messages;
          if (msg->hops == 1) ++s.hop1_queries;
          break;
        case gnutella::MessageType::kQueryHit:
          ++s.queryhit_messages;
          break;
        case gnutella::MessageType::kPing:
          ++s.ping_messages;
          break;
        case gnutella::MessageType::kPong:
          ++s.pong_messages;
          break;
        case gnutella::MessageType::kBye:
          ++s.bye_messages;
          break;
        case gnutella::MessageType::kRouteTableUpdate:
          ++s.route_update_messages;
          break;
      }
    }
  }
  return s;
}

}  // namespace p2pgen::trace
