#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <streambuf>

namespace p2pgen::trace {
namespace {

constexpr char kMagic[4] = {'P', '2', 'P', 'T'};
constexpr std::uint32_t kVersion = 2;  // v2 adds MessageEvent::guid_hash

enum class RecordKind : std::uint8_t {
  kSessionStart = 1,
  kMessage = 2,
  kSessionEnd = 3,
};

void put_bytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <typename T>
void put_pod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &value, sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put_pod(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

/// Shared helpers for the read cursors below (stream- and memory-backed).
/// Both expose get_bytes/get_pod/get_string/offset; read_event is a
/// template over the cursor so one decoder serves files and spool frames.
template <typename Source>
std::string source_get_string(Source& in) {
  const auto at = in.offset();
  const auto size = in.template get_pod<std::uint32_t>();
  if (size > 1u << 20) {
    throw TraceIoError("trace: oversized string (" + std::to_string(size) +
                           " bytes) at byte offset " + std::to_string(at),
                       at);
  }
  std::string s(size, '\0');
  if (size > 0) in.get_bytes(s.data(), size);
  return s;
}

/// Read cursor: tracks the absolute byte offset so every failure can name
/// where in the stream it happened.
class ByteSource {
 public:
  explicit ByteSource(std::istream& in) : in_(in) {}

  std::uint64_t offset() const noexcept { return offset_; }

  void get_bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(in_.gcount());
    offset_ += got;
    if (got != n) {
      throw TraceIoError("trace: truncated input (needed " +
                             std::to_string(n - got) +
                             " more byte(s)) at byte offset " +
                             std::to_string(offset_),
                         offset_);
    }
  }

  template <typename T>
  T get_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    get_bytes(&value, sizeof(value));
    return value;
  }

  std::string get_string() { return source_get_string(*this); }

  /// Reads the next record-kind byte; returns false on a clean EOF (no
  /// bytes available at a record boundary).
  bool get_record_kind(std::uint8_t& kind) {
    in_.read(reinterpret_cast<char*>(&kind), 1);
    if (in_.gcount() == 0) return false;
    ++offset_;
    return true;
  }

  /// Consumes the rest of the stream, returning how many bytes it held.
  /// Used by the lenient reader to size the truncated tail.
  std::uint64_t drain_remaining() {
    in_.clear();
    char buf[4096];
    std::uint64_t n = 0;
    while (in_.read(buf, sizeof(buf)) || in_.gcount() > 0) {
      n += static_cast<std::uint64_t>(in_.gcount());
      if (in_.gcount() == 0) break;
    }
    return n;
  }

 private:
  std::istream& in_;
  std::uint64_t offset_ = 0;
};

/// Memory-backed cursor over one spool frame payload.
class MemSource {
 public:
  MemSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint64_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept {
    return size_ - static_cast<std::size_t>(offset_);
  }

  void get_bytes(void* out, std::size_t n) {
    if (remaining() < n) {
      offset_ = size_;
      throw TraceIoError("trace: truncated record (needed " +
                             std::to_string(n - remaining()) +
                             " more byte(s)) at byte offset " +
                             std::to_string(offset_),
                         offset_);
    }
    std::memcpy(out, data_ + offset_, n);
    offset_ += n;
  }

  template <typename T>
  T get_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    get_bytes(&value, sizeof(value));
    return value;
  }

  std::string get_string() { return source_get_string(*this); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::uint64_t offset_ = 0;
};

void write_event(std::ostream& out, const TraceEvent& event) {
  if (const auto* start = std::get_if<SessionStart>(&event)) {
    put_pod(out, RecordKind::kSessionStart);
    put_pod(out, start->time);
    put_pod(out, start->session_id);
    put_pod(out, start->ip);
    put_pod(out, static_cast<std::uint8_t>(start->ultrapeer));
    put_string(out, start->user_agent);
  } else if (const auto* msg = std::get_if<MessageEvent>(&event)) {
    put_pod(out, RecordKind::kMessage);
    put_pod(out, msg->time);
    put_pod(out, msg->session_id);
    put_pod(out, static_cast<std::uint8_t>(msg->type));
    put_pod(out, msg->ttl);
    put_pod(out, msg->hops);
    put_pod(out, msg->guid_hash);
    put_string(out, msg->query);
    put_pod(out, static_cast<std::uint8_t>(msg->sha1));
    put_pod(out, msg->source_ip);
    put_pod(out, msg->shared_files);
  } else {
    const auto& end = std::get<SessionEnd>(event);
    put_pod(out, RecordKind::kSessionEnd);
    put_pod(out, end.time);
    put_pod(out, end.session_id);
    put_pod(out, static_cast<std::uint8_t>(end.reason));
  }
}

template <typename Source>
TraceEvent read_event(Source& in, RecordKind kind, std::uint32_t version,
                      std::uint64_t record_offset) {
  switch (kind) {
    case RecordKind::kSessionStart: {
      SessionStart s;
      s.time = in.template get_pod<double>();
      s.session_id = in.template get_pod<std::uint64_t>();
      s.ip = in.template get_pod<std::uint32_t>();
      s.ultrapeer = in.template get_pod<std::uint8_t>() != 0;
      s.user_agent = in.get_string();
      return s;
    }
    case RecordKind::kMessage: {
      MessageEvent m;
      m.time = in.template get_pod<double>();
      m.session_id = in.template get_pod<std::uint64_t>();
      m.type = static_cast<gnutella::MessageType>(in.template get_pod<std::uint8_t>());
      m.ttl = in.template get_pod<std::uint8_t>();
      m.hops = in.template get_pod<std::uint8_t>();
      if (version >= 2) m.guid_hash = in.template get_pod<std::uint64_t>();
      m.query = in.get_string();
      m.sha1 = in.template get_pod<std::uint8_t>() != 0;
      m.source_ip = in.template get_pod<std::uint32_t>();
      m.shared_files = in.template get_pod<std::uint32_t>();
      return m;
    }
    case RecordKind::kSessionEnd: {
      SessionEnd e;
      e.time = in.template get_pod<double>();
      e.session_id = in.template get_pod<std::uint64_t>();
      e.reason = static_cast<EndReason>(in.template get_pod<std::uint8_t>());
      return e;
    }
  }
  throw TraceIoError("trace: unknown record kind " +
                         std::to_string(static_cast<int>(kind)) +
                         " at byte offset " + std::to_string(record_offset),
                     record_offset);
}

void write_header(std::ostream& out) {
  put_bytes(out, kMagic, sizeof(kMagic));
  put_pod(out, kVersion);
}

std::uint32_t read_header(ByteSource& in) {
  char magic[4];
  in.get_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw TraceIoError("trace: bad magic at byte offset 0", 0);
  }
  const auto version = in.get_pod<std::uint32_t>();
  if (version == 0 || version > kVersion) {
    throw TraceIoError("trace: unsupported version " +
                           std::to_string(version) + " at byte offset 4",
                       4);
  }
  return version;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  write_header(out);
  for (const auto& event : trace.events()) write_event(out, event);
  if (!out) throw std::runtime_error("trace: write failure");
}

Trace read_binary(std::istream& in) {
  ByteSource source(in);
  const std::uint32_t version = read_header(source);
  Trace trace;
  while (true) {
    const std::uint64_t record_offset = source.offset();
    std::uint8_t kind_byte = 0;
    if (!source.get_record_kind(kind_byte)) break;  // clean EOF
    trace.append(read_event(source, static_cast<RecordKind>(kind_byte),
                            version, record_offset));
  }
  return trace;
}

void SalvageReport::merge_shard(SalvageReport&& other, unsigned shard) {
  records_recovered += other.records_recovered;
  frames_lost += other.frames_lost;
  bytes_quarantined += other.bytes_quarantined;
  censored_sessions += other.censored_sessions;
  censored_queries += other.censored_queries;
  for (auto& range : other.ranges) {
    range.shard = shard;
    ranges.push_back(std::move(range));
  }
}

Trace read_trace_lenient(std::istream& in, SalvageReport* report) {
  ByteSource source(in);
  const std::uint32_t version = read_header(source);  // header damage: throws
  Trace trace;
  SalvageReport local;
  double last_time = 0.0;
  while (true) {
    const std::uint64_t record_offset = source.offset();
    std::uint8_t kind_byte = 0;
    try {
      if (!source.get_record_kind(kind_byte)) break;  // clean EOF
      TraceEvent event = read_event(source, static_cast<RecordKind>(kind_byte),
                                    version, record_offset);
      last_time = event_time(event);
      trace.append(std::move(event));
    } catch (const TraceIoError& e) {
      // Torn or corrupt record: keep the prefix, quarantine the tail as
      // one trailing range.  A flat stream has no frame boundaries to
      // resync on, so the damage always runs to the end (+inf).
      SalvageRange range;
      range.byte_begin = record_offset;
      range.byte_end = source.offset() + source.drain_remaining();
      range.frames_lost = 1;  // lower bound: at least the record we hit
      range.time_before = last_time;
      range.detail = e.what();
      local.frames_lost = range.frames_lost;
      local.bytes_quarantined = range.byte_end - range.byte_begin;
      local.ranges.push_back(std::move(range));
      break;
    }
  }
  local.records_recovered = trace.size();
  if (report != nullptr) *report = local;
  return trace;
}

Trace load_trace_lenient(const std::string& path, SalvageReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_trace_lenient(in, report);
}

namespace {

/// Streambuf that appends everything written to a std::string.
class StringAppendBuf : public std::streambuf {
 public:
  explicit StringAppendBuf(std::string& out) : out_(out) {}

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) out_.push_back(static_cast<char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* data, std::streamsize n) override {
    out_.append(data, static_cast<std::size_t>(n));
    return n;
  }

 private:
  std::string& out_;
};

}  // namespace

void append_event_binary(const TraceEvent& event, std::string& out) {
  StringAppendBuf buf(out);
  std::ostream os(&buf);
  write_event(os, event);
}

void append_header_binary(std::string& out) {
  StringAppendBuf buf(out);
  std::ostream os(&buf);
  write_header(os);
}

TraceEvent decode_event_binary(const std::uint8_t* data, std::size_t size) {
  MemSource source(data, size);
  std::uint8_t kind_byte = 0;
  source.get_bytes(&kind_byte, 1);
  TraceEvent event =
      read_event(source, static_cast<RecordKind>(kind_byte), kVersion, 0);
  if (source.remaining() != 0) {
    throw TraceIoError("trace: record carries " +
                           std::to_string(source.remaining()) +
                           " trailing byte(s)",
                       source.offset());
  }
  return event;
}

void save_binary(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(trace, out);
}

Trace load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  try {
    return read_binary(in);
  } catch (const TraceIoError& e) {
    throw TraceIoError(path + ": " + e.what(), e.byte_offset());
  }
}

namespace {

/// Streambuf that hashes every byte written to it and stores nothing.
class DigestStreambuf : public std::streambuf {
 public:
  std::uint64_t digest() const noexcept { return hash_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) mix(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* data, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      mix(static_cast<unsigned char>(data[i]));
    }
    return n;
  }

 private:
  void mix(unsigned char byte) noexcept {
    hash_ ^= byte;
    hash_ *= 0x100000001b3ULL;  // FNV-1a 64-bit prime
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace

std::uint64_t binary_digest(const Trace& trace) {
  DigestStreambuf buf;
  std::ostream out(&buf);
  write_binary(trace, out);
  return buf.digest();
}

void write_csv(const Trace& trace, std::ostream& out) {
  out << "kind,time,session_id,ip,ultrapeer,user_agent,type,ttl,hops,query,"
         "sha1,source_ip,shared_files,guid_hash,end_reason\n";
  for (const auto& event : trace.events()) {
    if (const auto* s = std::get_if<SessionStart>(&event)) {
      out << "start," << s->time << ',' << s->session_id << ',' << s->ip << ','
          << (s->ultrapeer ? 1 : 0) << ",\"" << s->user_agent
          << "\",,,,,,,,\n";
    } else if (const auto* m = std::get_if<MessageEvent>(&event)) {
      out << "msg," << m->time << ',' << m->session_id << ",,,,"
          << gnutella::message_type_name(m->type) << ','
          << static_cast<int>(m->ttl) << ',' << static_cast<int>(m->hops)
          << ",\"" << m->query << "\"," << (m->sha1 ? 1 : 0) << ','
          << m->source_ip << ',' << m->shared_files << ',' << m->guid_hash
          << ",\n";
    } else {
      const auto& e = std::get<SessionEnd>(event);
      out << "end," << e.time << ',' << e.session_id << ",,,,,,,,,,,,"
          << static_cast<int>(e.reason) << '\n';
    }
  }
}

struct BinaryTraceWriter::Impl {
  std::ofstream out;
  bool closed = false;
};

BinaryTraceWriter::BinaryTraceWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary);
  if (!impl_->out) throw std::runtime_error("trace: cannot open " + path);
  write_header(impl_->out);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed flush here is unreportable.
  }
}

void BinaryTraceWriter::on_event(const TraceEvent& event) {
  if (impl_->closed) throw std::logic_error("BinaryTraceWriter: already closed");
  write_event(impl_->out, event);
  ++events_written_;
}

void BinaryTraceWriter::close() {
  if (impl_->closed) return;
  impl_->closed = true;
  impl_->out.flush();
  if (!impl_->out) throw std::runtime_error("BinaryTraceWriter: flush failed");
  impl_->out.close();
}

}  // namespace p2pgen::trace
