#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

namespace p2pgen::trace {
namespace {

constexpr char kMagic[4] = {'P', '2', 'P', 'T'};
constexpr std::uint32_t kVersion = 2;  // v2 adds MessageEvent::guid_hash

enum class RecordKind : std::uint8_t {
  kSessionStart = 1,
  kMessage = 2,
  kSessionEnd = 3,
};

void put_bytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <typename T>
void put_pod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &value, sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put_pod(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

void get_bytes(std::istream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw std::runtime_error("trace: truncated input");
  }
}

template <typename T>
T get_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  get_bytes(in, &value, sizeof(value));
  return value;
}

std::string get_string(std::istream& in) {
  const auto size = get_pod<std::uint32_t>(in);
  if (size > 1u << 20) throw std::runtime_error("trace: oversized string");
  std::string s(size, '\0');
  if (size > 0) get_bytes(in, s.data(), size);
  return s;
}

void write_event(std::ostream& out, const TraceEvent& event) {
  if (const auto* start = std::get_if<SessionStart>(&event)) {
    put_pod(out, RecordKind::kSessionStart);
    put_pod(out, start->time);
    put_pod(out, start->session_id);
    put_pod(out, start->ip);
    put_pod(out, static_cast<std::uint8_t>(start->ultrapeer));
    put_string(out, start->user_agent);
  } else if (const auto* msg = std::get_if<MessageEvent>(&event)) {
    put_pod(out, RecordKind::kMessage);
    put_pod(out, msg->time);
    put_pod(out, msg->session_id);
    put_pod(out, static_cast<std::uint8_t>(msg->type));
    put_pod(out, msg->ttl);
    put_pod(out, msg->hops);
    put_pod(out, msg->guid_hash);
    put_string(out, msg->query);
    put_pod(out, static_cast<std::uint8_t>(msg->sha1));
    put_pod(out, msg->source_ip);
    put_pod(out, msg->shared_files);
  } else {
    const auto& end = std::get<SessionEnd>(event);
    put_pod(out, RecordKind::kSessionEnd);
    put_pod(out, end.time);
    put_pod(out, end.session_id);
    put_pod(out, static_cast<std::uint8_t>(end.reason));
  }
}

TraceEvent read_event(std::istream& in, RecordKind kind,
                      std::uint32_t version) {
  switch (kind) {
    case RecordKind::kSessionStart: {
      SessionStart s;
      s.time = get_pod<double>(in);
      s.session_id = get_pod<std::uint64_t>(in);
      s.ip = get_pod<std::uint32_t>(in);
      s.ultrapeer = get_pod<std::uint8_t>(in) != 0;
      s.user_agent = get_string(in);
      return s;
    }
    case RecordKind::kMessage: {
      MessageEvent m;
      m.time = get_pod<double>(in);
      m.session_id = get_pod<std::uint64_t>(in);
      m.type = static_cast<gnutella::MessageType>(get_pod<std::uint8_t>(in));
      m.ttl = get_pod<std::uint8_t>(in);
      m.hops = get_pod<std::uint8_t>(in);
      if (version >= 2) m.guid_hash = get_pod<std::uint64_t>(in);
      m.query = get_string(in);
      m.sha1 = get_pod<std::uint8_t>(in) != 0;
      m.source_ip = get_pod<std::uint32_t>(in);
      m.shared_files = get_pod<std::uint32_t>(in);
      return m;
    }
    case RecordKind::kSessionEnd: {
      SessionEnd e;
      e.time = get_pod<double>(in);
      e.session_id = get_pod<std::uint64_t>(in);
      e.reason = static_cast<EndReason>(get_pod<std::uint8_t>(in));
      return e;
    }
  }
  throw std::runtime_error("trace: unknown record kind");
}

void write_header(std::ostream& out) {
  put_bytes(out, kMagic, sizeof(kMagic));
  put_pod(out, kVersion);
}

std::uint32_t read_header(std::istream& in) {
  char magic[4];
  get_bytes(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const auto version = get_pod<std::uint32_t>(in);
  if (version == 0 || version > kVersion) {
    throw std::runtime_error("trace: unsupported version");
  }
  return version;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  write_header(out);
  for (const auto& event : trace.events()) write_event(out, event);
  if (!out) throw std::runtime_error("trace: write failure");
}

Trace read_binary(std::istream& in) {
  const std::uint32_t version = read_header(in);
  Trace trace;
  while (true) {
    std::uint8_t kind_byte = 0;
    in.read(reinterpret_cast<char*>(&kind_byte), 1);
    if (in.gcount() == 0) break;  // clean EOF
    trace.append(read_event(in, static_cast<RecordKind>(kind_byte), version));
  }
  return trace;
}

void save_binary(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_binary(trace, out);
}

Trace load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(in);
}

void write_csv(const Trace& trace, std::ostream& out) {
  out << "kind,time,session_id,ip,ultrapeer,user_agent,type,ttl,hops,query,"
         "sha1,source_ip,shared_files,guid_hash,end_reason\n";
  for (const auto& event : trace.events()) {
    if (const auto* s = std::get_if<SessionStart>(&event)) {
      out << "start," << s->time << ',' << s->session_id << ',' << s->ip << ','
          << (s->ultrapeer ? 1 : 0) << ",\"" << s->user_agent
          << "\",,,,,,,,\n";
    } else if (const auto* m = std::get_if<MessageEvent>(&event)) {
      out << "msg," << m->time << ',' << m->session_id << ",,,,"
          << gnutella::message_type_name(m->type) << ','
          << static_cast<int>(m->ttl) << ',' << static_cast<int>(m->hops)
          << ",\"" << m->query << "\"," << (m->sha1 ? 1 : 0) << ','
          << m->source_ip << ',' << m->shared_files << ',' << m->guid_hash
          << ",\n";
    } else {
      const auto& e = std::get<SessionEnd>(event);
      out << "end," << e.time << ',' << e.session_id << ",,,,,,,,,,,,"
          << static_cast<int>(e.reason) << '\n';
    }
  }
}

struct BinaryTraceWriter::Impl {
  std::ofstream out;
  bool closed = false;
};

BinaryTraceWriter::BinaryTraceWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary);
  if (!impl_->out) throw std::runtime_error("trace: cannot open " + path);
  write_header(impl_->out);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed flush here is unreportable.
  }
}

void BinaryTraceWriter::on_event(const TraceEvent& event) {
  if (impl_->closed) throw std::logic_error("BinaryTraceWriter: already closed");
  write_event(impl_->out, event);
  ++events_written_;
}

void BinaryTraceWriter::close() {
  if (impl_->closed) return;
  impl_->closed = true;
  impl_->out.flush();
  if (!impl_->out) throw std::runtime_error("BinaryTraceWriter: flush failed");
  impl_->out.close();
}

}  // namespace p2pgen::trace
