// p2pgen — trace serialization.
//
// Two formats:
//   * a compact binary format ("P2PT" magic, version 1) with exact
//     round-trip semantics — used to persist simulated traces and by the
//     streaming BinaryTraceWriter sink for paper-scale runs that should
//     not be held in memory;
//   * CSV export for ad-hoc inspection (examples/trace_inspector).
#pragma once

#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace p2pgen::trace {

/// Thrown on truncated or corrupt trace input.  Carries the byte offset
/// at which the malformation was detected, so a damaged multi-gigabyte
/// trace file can be diagnosed (and salvaged up to the offset) instead of
/// failing with a context-free error or silently reading a partial trace.
class TraceIoError : public std::runtime_error {
 public:
  TraceIoError(const std::string& what, std::uint64_t byte_offset)
      : std::runtime_error(what), byte_offset_(byte_offset) {}

  /// Offset (bytes from the start of the stream) of the failure.
  std::uint64_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::uint64_t byte_offset_;
};

/// Serializes a whole trace to a binary stream.  Throws std::runtime_error
/// on stream failure.
void write_binary(const Trace& trace, std::ostream& out);

/// Reads a whole binary trace.  Throws TraceIoError (with the byte
/// offset) on truncated or malformed input, std::runtime_error on other
/// stream failure.  A stream that ends exactly on a record boundary is a
/// clean EOF.
Trace read_binary(std::istream& in);

/// One quarantined byte range of a damaged stream.  Every recovery path
/// in the repo — the spool salvage reader, the lenient trace reader and
/// the checkpoint layer — accounts loss in this one shape, so byte
/// offsets mean the same thing everywhere.
struct SalvageRange {
  std::string file;    ///< segment/file basename ("" for plain streams)
  unsigned shard = 0;  ///< filled in by multi-shard consumers
  std::uint64_t byte_begin = 0;   ///< offset of the first damaged byte
  std::uint64_t byte_end = 0;     ///< resync point (one past the damage)
  /// Frames skipped inside [byte_begin, byte_end).  Exact when the
  /// damaged frame's length header survived (payload/CRC corruption);
  /// otherwise a lower bound — resync cannot count boundaries it never
  /// saw.  At least 1 for every range.
  std::uint64_t frames_lost = 0;
  /// Inferred sim-time gap window: the time of the last valid record
  /// before the damage (0 when the damage starts before any record) and
  /// of the first valid record after it (+inf when the damage ran to the
  /// end of the stream).  NaN only transiently inside the segment reader,
  /// before SalvageAssembler patches across segment boundaries.
  double time_before = 0.0;
  double time_after = std::numeric_limits<double>::infinity();
  std::string detail;  ///< what the decoder said about the first bad frame
};

/// Unified loss accounting for a salvaged read.  damaged() == false means
/// the read was bit-identical to a strict one.
struct SalvageReport {
  std::uint64_t records_recovered = 0;  ///< valid records fed downstream
  std::uint64_t frames_lost = 0;        ///< sum over ranges (lower bound)
  std::uint64_t bytes_quarantined = 0;  ///< sum of range byte widths
  std::vector<SalvageRange> ranges;     ///< in (shard, file, byte) order
  /// Gap-censoring counts, filled by the analysis layer: sessions whose
  /// lifetime intersects a gap window are excluded from filter rules and
  /// fits, counted here instead of silently mixed in.
  std::uint64_t censored_sessions = 0;
  std::uint64_t censored_queries = 0;

  bool damaged() const noexcept { return !ranges.empty(); }

  /// Folds `other` (a per-shard report) onto this one, tagging its
  /// ranges with `shard`.  Call in ascending shard order so the combined
  /// range list stays in (shard, file, byte) order.
  void merge_shard(SalvageReport&& other, unsigned shard);
};

/// Reads as much of a binary trace as is intact: the valid record prefix
/// is returned and the torn/corrupt tail is described in `report` (one
/// trailing SalvageRange) instead of thrown.  A damaged *header* is still
/// a hard TraceIoError — a stream that does not even start as a trace has
/// no salvageable prefix.  For a fully valid stream the result is
/// identical to read_binary() and report->damaged() is false.
Trace read_trace_lenient(std::istream& in, SalvageReport* report = nullptr);

/// File-path convenience for read_trace_lenient.
Trace load_trace_lenient(const std::string& path,
                         SalvageReport* report = nullptr);

/// Appends the binary encoding of one event — exactly the record the
/// stream format uses, without the file header — to `out`.  The
/// building block of the durable spool (trace/spool.hpp), which frames
/// and checksums each record individually.
void append_event_binary(const TraceEvent& event, std::string& out);

/// Appends the binary stream header ("P2PT" magic + version) to `out` —
/// exactly the bytes write_binary() emits before the first record.  Lets
/// the streaming analysis fold header-then-records into the same FNV-1a
/// digest binary_digest() computes, without materializing a Trace.
void append_header_binary(std::string& out);

/// Decodes one record produced by append_event_binary.  Throws
/// TraceIoError on malformed input or if the buffer holds trailing bytes
/// beyond the one record.
TraceEvent decode_event_binary(const std::uint8_t* data, std::size_t size);

/// File-path conveniences.
void save_binary(const Trace& trace, const std::string& path);
Trace load_binary(const std::string& path);

/// CSV export (one row per event, header included).
void write_csv(const Trace& trace, std::ostream& out);

/// FNV-1a hash of the trace's binary serialization, computed streamingly
/// (the serialized bytes are never materialized).  Two traces have equal
/// digests iff write_binary() would produce identical byte streams — the
/// cheap byte-identity check used by the determinism tests and the
/// parallel-scaling bench.
std::uint64_t binary_digest(const Trace& trace);

/// A TraceSink that streams events straight to a binary file.
class BinaryTraceWriter : public TraceSink {
 public:
  /// Opens `path` for writing and emits the header.  Throws on failure.
  explicit BinaryTraceWriter(const std::string& path);
  ~BinaryTraceWriter() override;

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void on_event(const TraceEvent& event) override;

  /// Flushes and closes; further on_event calls throw.  Called by the
  /// destructor if not called explicitly.
  void close();

  std::uint64_t events_written() const noexcept { return events_written_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t events_written_ = 0;
};

}  // namespace p2pgen::trace
